
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/bgp/as_path_test.cc" "tests/CMakeFiles/bgp_test.dir/bgp/as_path_test.cc.o" "gcc" "tests/CMakeFiles/bgp_test.dir/bgp/as_path_test.cc.o.d"
  "/root/repo/tests/bgp/convergence_test.cc" "tests/CMakeFiles/bgp_test.dir/bgp/convergence_test.cc.o" "gcc" "tests/CMakeFiles/bgp_test.dir/bgp/convergence_test.cc.o.d"
  "/root/repo/tests/bgp/damping_test.cc" "tests/CMakeFiles/bgp_test.dir/bgp/damping_test.cc.o" "gcc" "tests/CMakeFiles/bgp_test.dir/bgp/damping_test.cc.o.d"
  "/root/repo/tests/bgp/decision_test.cc" "tests/CMakeFiles/bgp_test.dir/bgp/decision_test.cc.o" "gcc" "tests/CMakeFiles/bgp_test.dir/bgp/decision_test.cc.o.d"
  "/root/repo/tests/bgp/fuzz_test.cc" "tests/CMakeFiles/bgp_test.dir/bgp/fuzz_test.cc.o" "gcc" "tests/CMakeFiles/bgp_test.dir/bgp/fuzz_test.cc.o.d"
  "/root/repo/tests/bgp/message_test.cc" "tests/CMakeFiles/bgp_test.dir/bgp/message_test.cc.o" "gcc" "tests/CMakeFiles/bgp_test.dir/bgp/message_test.cc.o.d"
  "/root/repo/tests/bgp/path_attributes_test.cc" "tests/CMakeFiles/bgp_test.dir/bgp/path_attributes_test.cc.o" "gcc" "tests/CMakeFiles/bgp_test.dir/bgp/path_attributes_test.cc.o.d"
  "/root/repo/tests/bgp/policy_test.cc" "tests/CMakeFiles/bgp_test.dir/bgp/policy_test.cc.o" "gcc" "tests/CMakeFiles/bgp_test.dir/bgp/policy_test.cc.o.d"
  "/root/repo/tests/bgp/rib_test.cc" "tests/CMakeFiles/bgp_test.dir/bgp/rib_test.cc.o" "gcc" "tests/CMakeFiles/bgp_test.dir/bgp/rib_test.cc.o.d"
  "/root/repo/tests/bgp/route_reflection_test.cc" "tests/CMakeFiles/bgp_test.dir/bgp/route_reflection_test.cc.o" "gcc" "tests/CMakeFiles/bgp_test.dir/bgp/route_reflection_test.cc.o.d"
  "/root/repo/tests/bgp/route_refresh_test.cc" "tests/CMakeFiles/bgp_test.dir/bgp/route_refresh_test.cc.o" "gcc" "tests/CMakeFiles/bgp_test.dir/bgp/route_refresh_test.cc.o.d"
  "/root/repo/tests/bgp/session_test.cc" "tests/CMakeFiles/bgp_test.dir/bgp/session_test.cc.o" "gcc" "tests/CMakeFiles/bgp_test.dir/bgp/session_test.cc.o.d"
  "/root/repo/tests/bgp/speaker_test.cc" "tests/CMakeFiles/bgp_test.dir/bgp/speaker_test.cc.o" "gcc" "tests/CMakeFiles/bgp_test.dir/bgp/speaker_test.cc.o.d"
  "/root/repo/tests/bgp/table_io_test.cc" "tests/CMakeFiles/bgp_test.dir/bgp/table_io_test.cc.o" "gcc" "tests/CMakeFiles/bgp_test.dir/bgp/table_io_test.cc.o.d"
  "/root/repo/tests/bgp/update_builder_test.cc" "tests/CMakeFiles/bgp_test.dir/bgp/update_builder_test.cc.o" "gcc" "tests/CMakeFiles/bgp_test.dir/bgp/update_builder_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bgpbench_core.dir/DependInfo.cmake"
  "/root/repo/build/src/router/CMakeFiles/bgpbench_router.dir/DependInfo.cmake"
  "/root/repo/build/src/fib/CMakeFiles/bgpbench_fib.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bgpbench_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/bgpbench_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/bgpbench_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/bgpbench_net.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/bgpbench_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
