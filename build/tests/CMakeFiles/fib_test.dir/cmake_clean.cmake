file(REMOVE_RECURSE
  "CMakeFiles/fib_test.dir/fib/forwarding_test.cc.o"
  "CMakeFiles/fib_test.dir/fib/forwarding_test.cc.o.d"
  "CMakeFiles/fib_test.dir/fib/lpm_trie_test.cc.o"
  "CMakeFiles/fib_test.dir/fib/lpm_trie_test.cc.o.d"
  "fib_test"
  "fib_test.pdb"
  "fib_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fib_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
