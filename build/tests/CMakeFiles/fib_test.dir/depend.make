# Empty dependencies file for fib_test.
# This may be replaced when dependencies are built.
