file(REMOVE_RECURSE
  "CMakeFiles/bgpbench_net.dir/byte_io.cc.o"
  "CMakeFiles/bgpbench_net.dir/byte_io.cc.o.d"
  "CMakeFiles/bgpbench_net.dir/checksum.cc.o"
  "CMakeFiles/bgpbench_net.dir/checksum.cc.o.d"
  "CMakeFiles/bgpbench_net.dir/ipv4_address.cc.o"
  "CMakeFiles/bgpbench_net.dir/ipv4_address.cc.o.d"
  "CMakeFiles/bgpbench_net.dir/packet.cc.o"
  "CMakeFiles/bgpbench_net.dir/packet.cc.o.d"
  "CMakeFiles/bgpbench_net.dir/prefix.cc.o"
  "CMakeFiles/bgpbench_net.dir/prefix.cc.o.d"
  "libbgpbench_net.a"
  "libbgpbench_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgpbench_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
