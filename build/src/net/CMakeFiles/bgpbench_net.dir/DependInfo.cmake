
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/byte_io.cc" "src/net/CMakeFiles/bgpbench_net.dir/byte_io.cc.o" "gcc" "src/net/CMakeFiles/bgpbench_net.dir/byte_io.cc.o.d"
  "/root/repo/src/net/checksum.cc" "src/net/CMakeFiles/bgpbench_net.dir/checksum.cc.o" "gcc" "src/net/CMakeFiles/bgpbench_net.dir/checksum.cc.o.d"
  "/root/repo/src/net/ipv4_address.cc" "src/net/CMakeFiles/bgpbench_net.dir/ipv4_address.cc.o" "gcc" "src/net/CMakeFiles/bgpbench_net.dir/ipv4_address.cc.o.d"
  "/root/repo/src/net/packet.cc" "src/net/CMakeFiles/bgpbench_net.dir/packet.cc.o" "gcc" "src/net/CMakeFiles/bgpbench_net.dir/packet.cc.o.d"
  "/root/repo/src/net/prefix.cc" "src/net/CMakeFiles/bgpbench_net.dir/prefix.cc.o" "gcc" "src/net/CMakeFiles/bgpbench_net.dir/prefix.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
