file(REMOVE_RECURSE
  "libbgpbench_net.a"
)
