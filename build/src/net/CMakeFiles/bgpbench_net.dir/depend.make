# Empty dependencies file for bgpbench_net.
# This may be replaced when dependencies are built.
