# Empty dependencies file for bgpbench_router.
# This may be replaced when dependencies are built.
