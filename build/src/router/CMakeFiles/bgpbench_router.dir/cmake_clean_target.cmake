file(REMOVE_RECURSE
  "libbgpbench_router.a"
)
