file(REMOVE_RECURSE
  "CMakeFiles/bgpbench_router.dir/router_system.cc.o"
  "CMakeFiles/bgpbench_router.dir/router_system.cc.o.d"
  "CMakeFiles/bgpbench_router.dir/system_profiles.cc.o"
  "CMakeFiles/bgpbench_router.dir/system_profiles.cc.o.d"
  "libbgpbench_router.a"
  "libbgpbench_router.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgpbench_router.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
