# Empty dependencies file for bgpbench_bgp.
# This may be replaced when dependencies are built.
