file(REMOVE_RECURSE
  "CMakeFiles/bgpbench_bgp.dir/as_path.cc.o"
  "CMakeFiles/bgpbench_bgp.dir/as_path.cc.o.d"
  "CMakeFiles/bgpbench_bgp.dir/damping.cc.o"
  "CMakeFiles/bgpbench_bgp.dir/damping.cc.o.d"
  "CMakeFiles/bgpbench_bgp.dir/decision.cc.o"
  "CMakeFiles/bgpbench_bgp.dir/decision.cc.o.d"
  "CMakeFiles/bgpbench_bgp.dir/message.cc.o"
  "CMakeFiles/bgpbench_bgp.dir/message.cc.o.d"
  "CMakeFiles/bgpbench_bgp.dir/path_attributes.cc.o"
  "CMakeFiles/bgpbench_bgp.dir/path_attributes.cc.o.d"
  "CMakeFiles/bgpbench_bgp.dir/policy.cc.o"
  "CMakeFiles/bgpbench_bgp.dir/policy.cc.o.d"
  "CMakeFiles/bgpbench_bgp.dir/rib.cc.o"
  "CMakeFiles/bgpbench_bgp.dir/rib.cc.o.d"
  "CMakeFiles/bgpbench_bgp.dir/session.cc.o"
  "CMakeFiles/bgpbench_bgp.dir/session.cc.o.d"
  "CMakeFiles/bgpbench_bgp.dir/speaker.cc.o"
  "CMakeFiles/bgpbench_bgp.dir/speaker.cc.o.d"
  "CMakeFiles/bgpbench_bgp.dir/table_io.cc.o"
  "CMakeFiles/bgpbench_bgp.dir/table_io.cc.o.d"
  "CMakeFiles/bgpbench_bgp.dir/types.cc.o"
  "CMakeFiles/bgpbench_bgp.dir/types.cc.o.d"
  "CMakeFiles/bgpbench_bgp.dir/update_builder.cc.o"
  "CMakeFiles/bgpbench_bgp.dir/update_builder.cc.o.d"
  "libbgpbench_bgp.a"
  "libbgpbench_bgp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgpbench_bgp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
