
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bgp/as_path.cc" "src/bgp/CMakeFiles/bgpbench_bgp.dir/as_path.cc.o" "gcc" "src/bgp/CMakeFiles/bgpbench_bgp.dir/as_path.cc.o.d"
  "/root/repo/src/bgp/damping.cc" "src/bgp/CMakeFiles/bgpbench_bgp.dir/damping.cc.o" "gcc" "src/bgp/CMakeFiles/bgpbench_bgp.dir/damping.cc.o.d"
  "/root/repo/src/bgp/decision.cc" "src/bgp/CMakeFiles/bgpbench_bgp.dir/decision.cc.o" "gcc" "src/bgp/CMakeFiles/bgpbench_bgp.dir/decision.cc.o.d"
  "/root/repo/src/bgp/message.cc" "src/bgp/CMakeFiles/bgpbench_bgp.dir/message.cc.o" "gcc" "src/bgp/CMakeFiles/bgpbench_bgp.dir/message.cc.o.d"
  "/root/repo/src/bgp/path_attributes.cc" "src/bgp/CMakeFiles/bgpbench_bgp.dir/path_attributes.cc.o" "gcc" "src/bgp/CMakeFiles/bgpbench_bgp.dir/path_attributes.cc.o.d"
  "/root/repo/src/bgp/policy.cc" "src/bgp/CMakeFiles/bgpbench_bgp.dir/policy.cc.o" "gcc" "src/bgp/CMakeFiles/bgpbench_bgp.dir/policy.cc.o.d"
  "/root/repo/src/bgp/rib.cc" "src/bgp/CMakeFiles/bgpbench_bgp.dir/rib.cc.o" "gcc" "src/bgp/CMakeFiles/bgpbench_bgp.dir/rib.cc.o.d"
  "/root/repo/src/bgp/session.cc" "src/bgp/CMakeFiles/bgpbench_bgp.dir/session.cc.o" "gcc" "src/bgp/CMakeFiles/bgpbench_bgp.dir/session.cc.o.d"
  "/root/repo/src/bgp/speaker.cc" "src/bgp/CMakeFiles/bgpbench_bgp.dir/speaker.cc.o" "gcc" "src/bgp/CMakeFiles/bgpbench_bgp.dir/speaker.cc.o.d"
  "/root/repo/src/bgp/table_io.cc" "src/bgp/CMakeFiles/bgpbench_bgp.dir/table_io.cc.o" "gcc" "src/bgp/CMakeFiles/bgpbench_bgp.dir/table_io.cc.o.d"
  "/root/repo/src/bgp/types.cc" "src/bgp/CMakeFiles/bgpbench_bgp.dir/types.cc.o" "gcc" "src/bgp/CMakeFiles/bgpbench_bgp.dir/types.cc.o.d"
  "/root/repo/src/bgp/update_builder.cc" "src/bgp/CMakeFiles/bgpbench_bgp.dir/update_builder.cc.o" "gcc" "src/bgp/CMakeFiles/bgpbench_bgp.dir/update_builder.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/bgpbench_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
