file(REMOVE_RECURSE
  "libbgpbench_bgp.a"
)
