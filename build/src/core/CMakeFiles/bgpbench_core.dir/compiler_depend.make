# Empty compiler generated dependencies file for bgpbench_core.
# This may be replaced when dependencies are built.
