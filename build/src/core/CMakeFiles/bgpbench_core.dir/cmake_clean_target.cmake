file(REMOVE_RECURSE
  "libbgpbench_core.a"
)
