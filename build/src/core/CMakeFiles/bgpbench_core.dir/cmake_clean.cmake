file(REMOVE_RECURSE
  "CMakeFiles/bgpbench_core.dir/benchmark_runner.cc.o"
  "CMakeFiles/bgpbench_core.dir/benchmark_runner.cc.o.d"
  "CMakeFiles/bgpbench_core.dir/scenario.cc.o"
  "CMakeFiles/bgpbench_core.dir/scenario.cc.o.d"
  "CMakeFiles/bgpbench_core.dir/test_peer.cc.o"
  "CMakeFiles/bgpbench_core.dir/test_peer.cc.o.d"
  "libbgpbench_core.a"
  "libbgpbench_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgpbench_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
