
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/churn.cc" "src/workload/CMakeFiles/bgpbench_workload.dir/churn.cc.o" "gcc" "src/workload/CMakeFiles/bgpbench_workload.dir/churn.cc.o.d"
  "/root/repo/src/workload/route_set.cc" "src/workload/CMakeFiles/bgpbench_workload.dir/route_set.cc.o" "gcc" "src/workload/CMakeFiles/bgpbench_workload.dir/route_set.cc.o.d"
  "/root/repo/src/workload/update_stream.cc" "src/workload/CMakeFiles/bgpbench_workload.dir/update_stream.cc.o" "gcc" "src/workload/CMakeFiles/bgpbench_workload.dir/update_stream.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bgp/CMakeFiles/bgpbench_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/bgpbench_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
