# Empty dependencies file for bgpbench_workload.
# This may be replaced when dependencies are built.
