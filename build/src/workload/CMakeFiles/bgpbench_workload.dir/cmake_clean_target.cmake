file(REMOVE_RECURSE
  "libbgpbench_workload.a"
)
