file(REMOVE_RECURSE
  "CMakeFiles/bgpbench_workload.dir/churn.cc.o"
  "CMakeFiles/bgpbench_workload.dir/churn.cc.o.d"
  "CMakeFiles/bgpbench_workload.dir/route_set.cc.o"
  "CMakeFiles/bgpbench_workload.dir/route_set.cc.o.d"
  "CMakeFiles/bgpbench_workload.dir/update_stream.cc.o"
  "CMakeFiles/bgpbench_workload.dir/update_stream.cc.o.d"
  "libbgpbench_workload.a"
  "libbgpbench_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgpbench_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
