file(REMOVE_RECURSE
  "CMakeFiles/bgpbench_sim.dir/cpu.cc.o"
  "CMakeFiles/bgpbench_sim.dir/cpu.cc.o.d"
  "CMakeFiles/bgpbench_sim.dir/event_queue.cc.o"
  "CMakeFiles/bgpbench_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/bgpbench_sim.dir/process.cc.o"
  "CMakeFiles/bgpbench_sim.dir/process.cc.o.d"
  "libbgpbench_sim.a"
  "libbgpbench_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgpbench_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
