file(REMOVE_RECURSE
  "libbgpbench_sim.a"
)
