# Empty dependencies file for bgpbench_sim.
# This may be replaced when dependencies are built.
