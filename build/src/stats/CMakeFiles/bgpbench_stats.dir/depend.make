# Empty dependencies file for bgpbench_stats.
# This may be replaced when dependencies are built.
