file(REMOVE_RECURSE
  "libbgpbench_stats.a"
)
