file(REMOVE_RECURSE
  "CMakeFiles/bgpbench_stats.dir/report.cc.o"
  "CMakeFiles/bgpbench_stats.dir/report.cc.o.d"
  "CMakeFiles/bgpbench_stats.dir/summary.cc.o"
  "CMakeFiles/bgpbench_stats.dir/summary.cc.o.d"
  "CMakeFiles/bgpbench_stats.dir/time_series.cc.o"
  "CMakeFiles/bgpbench_stats.dir/time_series.cc.o.d"
  "libbgpbench_stats.a"
  "libbgpbench_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgpbench_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
