file(REMOVE_RECURSE
  "libbgpbench_fib.a"
)
