file(REMOVE_RECURSE
  "CMakeFiles/bgpbench_fib.dir/forwarding_engine.cc.o"
  "CMakeFiles/bgpbench_fib.dir/forwarding_engine.cc.o.d"
  "CMakeFiles/bgpbench_fib.dir/forwarding_table.cc.o"
  "CMakeFiles/bgpbench_fib.dir/forwarding_table.cc.o.d"
  "libbgpbench_fib.a"
  "libbgpbench_fib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgpbench_fib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
