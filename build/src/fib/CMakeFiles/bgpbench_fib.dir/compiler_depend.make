# Empty compiler generated dependencies file for bgpbench_fib.
# This may be replaced when dependencies are built.
