file(REMOVE_RECURSE
  "CMakeFiles/bgpbench_cli.dir/bgpbench_cli.cc.o"
  "CMakeFiles/bgpbench_cli.dir/bgpbench_cli.cc.o.d"
  "bgpbench"
  "bgpbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgpbench_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
