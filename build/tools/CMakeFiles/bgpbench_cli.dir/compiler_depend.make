# Empty compiler generated dependencies file for bgpbench_cli.
# This may be replaced when dependencies are built.
