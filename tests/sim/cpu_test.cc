/**
 * @file
 * Tests for the quantum-stepped CPU model: priorities, multi-core
 * pipelining, SMT, and pinning.
 */

#include <gtest/gtest.h>

#include "net/logging.hh"
#include "sim/cpu.hh"

using namespace bgpbench;
using sim::CpuConfig;
using sim::CpuModel;
using sim::SimProcess;

namespace
{

constexpr sim::SimTime quantum = sim::nsFromMs(1);

/** 1 GHz single core: 1e6 cycles per 1 ms quantum. */
CpuConfig
oneCore()
{
    return CpuConfig{1, 1, 1e9, 0.65};
}

SimProcess
user(const std::string &name)
{
    return SimProcess(SimProcess::Config{name, sim::priority::user,
                                         -1});
}

} // namespace

TEST(CpuModel, RejectsBadConfig)
{
    EXPECT_THROW(CpuModel(CpuConfig{0, 1, 1e9, 0.65}), FatalError);
    EXPECT_THROW(CpuModel(CpuConfig{1, 1, -1, 0.65}), FatalError);
    EXPECT_THROW(CpuModel(CpuConfig{1, 1, 1e9, 0.0}), FatalError);
    EXPECT_THROW(CpuModel(CpuConfig{1, 1, 1e9, 1.5}), FatalError);
}

TEST(CpuModel, RejectsBadPin)
{
    CpuModel cpu(oneCore());
    SimProcess bad(SimProcess::Config{"p", 10, 4});
    EXPECT_THROW(cpu.addProcess(&bad), FatalError);
}

TEST(CpuModel, SingleProcessGetsFullQuantum)
{
    CpuModel cpu(oneCore());
    auto p = user("p");
    cpu.addProcess(&p);
    p.post(10'000'000); // 10 ms of work

    cpu.step(quantum);
    EXPECT_EQ(p.counters().cyclesConsumed, 1'000'000u);
    EXPECT_DOUBLE_EQ(cpu.lastQuantumPeakUtilisation(), 1.0);
}

TEST(CpuModel, EqualPrioritySharesFairly)
{
    CpuModel cpu(oneCore());
    auto a = user("a");
    auto b = user("b");
    cpu.addProcess(&a);
    cpu.addProcess(&b);
    a.post(10'000'000);
    b.post(10'000'000);

    for (int i = 0; i < 10; ++i)
        cpu.step(quantum);

    double total = double(a.counters().cyclesConsumed +
                          b.counters().cyclesConsumed);
    EXPECT_NEAR(total, 10e6, 1e3);
    EXPECT_NEAR(double(a.counters().cyclesConsumed), 5e6, 5e4);
}

TEST(CpuModel, HigherPriorityPreempts)
{
    CpuModel cpu(oneCore());
    SimProcess irq(SimProcess::Config{"irq", sim::priority::interrupt,
                                      0});
    auto p = user("user");
    cpu.addProcess(&irq);
    cpu.addProcess(&p);

    irq.post(600'000);
    p.post(10'000'000);
    cpu.step(quantum);

    // IRQ work done first; the user space got only the rest.
    EXPECT_EQ(irq.counters().cyclesConsumed, 600'000u);
    EXPECT_EQ(p.counters().cyclesConsumed, 400'000u);
}

TEST(CpuModel, WorkConservingWhenHighPriorityIdle)
{
    CpuModel cpu(oneCore());
    SimProcess irq(SimProcess::Config{"irq", sim::priority::interrupt,
                                      0});
    auto p = user("user");
    cpu.addProcess(&irq);
    cpu.addProcess(&p);
    p.post(10'000'000);

    cpu.step(quantum);
    EXPECT_EQ(p.counters().cyclesConsumed, 1'000'000u);
}

TEST(CpuModel, TwoCoresRunTwoProcessesConcurrently)
{
    CpuModel cpu(CpuConfig{2, 1, 1e9, 0.65});
    auto a = user("a");
    auto b = user("b");
    cpu.addProcess(&a);
    cpu.addProcess(&b);
    a.post(10'000'000);
    b.post(10'000'000);

    cpu.step(quantum);
    // Full quantum each: the pipeline effect the paper's dual-core
    // system exploits.
    EXPECT_EQ(a.counters().cyclesConsumed, 1'000'000u);
    EXPECT_EQ(b.counters().cyclesConsumed, 1'000'000u);
    EXPECT_NEAR(cpu.lastQuantumTotalUtilisation(), 1.0, 1e-9);
}

TEST(CpuModel, SmtSiblingsShareCoreAtReducedEfficiency)
{
    // One core, two hardware threads at 0.65 efficiency: two busy
    // processes together get 1.3 cores worth.
    CpuModel cpu(CpuConfig{1, 2, 1e9, 0.65});
    auto a = user("a");
    auto b = user("b");
    cpu.addProcess(&a);
    cpu.addProcess(&b);
    a.post(10'000'000);
    b.post(10'000'000);

    cpu.step(quantum);
    uint64_t total = a.counters().cyclesConsumed +
                     b.counters().cyclesConsumed;
    EXPECT_NEAR(double(total), 1.3e6, 1e3);
}

TEST(CpuModel, SmtSingleThreadRunsFullSpeed)
{
    CpuModel cpu(CpuConfig{1, 2, 1e9, 0.65});
    auto a = user("a");
    cpu.addProcess(&a);
    a.post(10'000'000);
    cpu.step(quantum);
    EXPECT_EQ(a.counters().cyclesConsumed, 1'000'000u);
}

TEST(CpuModel, ProcessesSpreadAcrossCoresBeforeSmt)
{
    // 2 cores x 2 threads: two heavy processes must land on
    // different physical cores, not SMT siblings.
    CpuModel cpu(CpuConfig{2, 2, 1e9, 0.65});
    auto a = user("a");
    auto b = user("b");
    cpu.addProcess(&a);
    cpu.addProcess(&b);
    a.post(10'000'000);
    b.post(10'000'000);

    cpu.step(quantum);
    int core_a = cpu.cpuOf(&a) / 2;
    int core_b = cpu.cpuOf(&b) / 2;
    EXPECT_NE(core_a, core_b);
    EXPECT_EQ(a.counters().cyclesConsumed, 1'000'000u);
    EXPECT_EQ(b.counters().cyclesConsumed, 1'000'000u);
}

TEST(CpuModel, PinnedProcessStaysPut)
{
    CpuModel cpu(CpuConfig{2, 1, 1e9, 0.65});
    SimProcess pinned(SimProcess::Config{"kernel",
                                         sim::priority::kernel, 0});
    cpu.addProcess(&pinned);
    pinned.post(10'000'000);
    for (int i = 0; i < 5; ++i)
        cpu.step(quantum);
    EXPECT_EQ(cpu.cpuOf(&pinned), 0);
}

TEST(CpuModel, PinnedInterferenceIsPerCore)
{
    // Kernel work pinned to CPU 0 must slow only the process that
    // shares CPU 0, not one on CPU 1.
    CpuModel cpu(CpuConfig{2, 1, 1e9, 0.65});
    SimProcess irq(SimProcess::Config{"irq", sim::priority::interrupt,
                                      0});
    auto a = user("a");
    auto b = user("b");
    cpu.addProcess(&irq);
    cpu.addProcess(&a);
    cpu.addProcess(&b);

    a.post(100'000'000);
    b.post(100'000'000);
    // Heavy recurring interrupt load.
    for (int i = 0; i < 10; ++i) {
        irq.post(500'000);
        cpu.step(quantum);
    }

    uint64_t fast = std::max(a.counters().cyclesConsumed,
                             b.counters().cyclesConsumed);
    uint64_t slow = std::min(a.counters().cyclesConsumed,
                             b.counters().cyclesConsumed);
    EXPECT_EQ(fast, 10'000'000u);  // undisturbed core
    EXPECT_NEAR(double(slow), 5e6, 1e5); // shares with interrupts
}

TEST(CpuModel, RebalanceSpreadsLateArrivals)
{
    CpuModel cpu(CpuConfig{2, 1, 1e9, 0.65});
    auto a = user("a");
    auto b = user("b");
    auto c = user("c");
    cpu.addProcess(&a);
    cpu.addProcess(&b);
    cpu.addProcess(&c);

    // a and b run first and land on both cores.
    a.post(10'000'000);
    b.post(10'000'000);
    cpu.step(quantum);
    // c arrives: it must share one core; total throughput stays 2.
    c.post(10'000'000);
    cpu.step(quantum);
    EXPECT_NEAR(cpu.lastQuantumTotalUtilisation(), 1.0, 1e-9);
}

TEST(CpuModel, IdleCpuReportsZeroUtilisation)
{
    CpuModel cpu(oneCore());
    auto p = user("p");
    cpu.addProcess(&p);
    cpu.step(quantum);
    EXPECT_DOUBLE_EQ(cpu.lastQuantumPeakUtilisation(), 0.0);
    EXPECT_FALSE(cpu.anyRunnable());
}

TEST(CpuModel, PartialDemandPartialUtilisation)
{
    CpuModel cpu(oneCore());
    auto p = user("p");
    cpu.addProcess(&p);
    p.post(250'000); // quarter of a quantum
    cpu.step(quantum);
    EXPECT_NEAR(cpu.lastQuantumPeakUtilisation(), 0.25, 0.01);
}
