/**
 * @file
 * Tests for SimProcess job accounting.
 */

#include <gtest/gtest.h>

#include "sim/process.hh"

using namespace bgpbench;
using sim::SimProcess;

namespace
{

SimProcess
proc(int priority = sim::priority::user)
{
    return SimProcess(SimProcess::Config{"test", priority, -1});
}

} // namespace

TEST(SimProcess, StartsIdle)
{
    auto p = proc();
    EXPECT_FALSE(p.runnable());
    EXPECT_EQ(p.backlogCycles(), 0u);
    EXPECT_EQ(p.grant(1000), 0u);
}

TEST(SimProcess, JobCompletesWhenPaid)
{
    auto p = proc();
    bool applied = false;
    p.post(100, [&]() { applied = true; });
    EXPECT_TRUE(p.runnable());
    EXPECT_EQ(p.backlogCycles(), 100u);

    EXPECT_EQ(p.grant(40), 40u);
    EXPECT_FALSE(applied);
    EXPECT_EQ(p.backlogCycles(), 60u);

    EXPECT_EQ(p.grant(60), 60u);
    EXPECT_TRUE(applied);
    EXPECT_FALSE(p.runnable());
    EXPECT_EQ(p.counters().jobsCompleted, 1u);
    EXPECT_EQ(p.counters().cyclesConsumed, 100u);
}

TEST(SimProcess, FifoOrderPreserved)
{
    auto p = proc();
    std::vector<int> order;
    p.post(10, [&]() { order.push_back(1); });
    p.post(10, [&]() { order.push_back(2); });
    p.post(10, [&]() { order.push_back(3); });
    p.grant(1000);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimProcess, GrantReturnsOnlyConsumed)
{
    auto p = proc();
    p.post(30);
    EXPECT_EQ(p.grant(100), 30u);
    EXPECT_EQ(p.grant(100), 0u);
}

TEST(SimProcess, ZeroCostJobRunsImmediately)
{
    auto p = proc();
    int runs = 0;
    p.post(0, [&]() { ++runs; });
    EXPECT_TRUE(p.runnable());
    EXPECT_EQ(p.grant(0), 0u);
    EXPECT_EQ(runs, 1);
    EXPECT_FALSE(p.runnable());
}

TEST(SimProcess, ApplyMayPostToSelf)
{
    auto p = proc();
    int stage = 0;
    p.post(10, [&]() {
        stage = 1;
        p.post(10, [&]() { stage = 2; });
    });
    p.grant(10);
    EXPECT_EQ(stage, 1);
    EXPECT_TRUE(p.runnable());
    p.grant(10);
    EXPECT_EQ(stage, 2);
}

TEST(SimProcess, BudgetBoundaryStopsBetweenJobs)
{
    auto p = proc();
    int applied = 0;
    p.post(50, [&]() { ++applied; });
    p.post(50, [&]() { ++applied; });
    // Exactly the first job's cost: second must not start.
    EXPECT_EQ(p.grant(50), 50u);
    EXPECT_EQ(applied, 1);
    EXPECT_EQ(p.backlogCycles(), 50u);
}

TEST(SimProcess, IntervalCyclesResetOnTake)
{
    auto p = proc();
    p.post(100);
    p.grant(60);
    EXPECT_EQ(p.takeIntervalCycles(), 60u);
    EXPECT_EQ(p.takeIntervalCycles(), 0u);
    p.grant(40);
    EXPECT_EQ(p.takeIntervalCycles(), 40u);
    EXPECT_EQ(p.counters().cyclesConsumed, 100u);
}

TEST(SimProcess, ClearBacklogDropsJobsWithoutRunning)
{
    auto p = proc();
    int applied = 0;
    p.post(10, [&]() { ++applied; });
    p.post(10, [&]() { ++applied; });
    p.clearBacklog();
    EXPECT_FALSE(p.runnable());
    p.grant(1000);
    EXPECT_EQ(applied, 0);
}

TEST(SimProcess, ConfigAccessors)
{
    SimProcess p(SimProcess::Config{"xorp_bgp",
                                    sim::priority::kernel, 2});
    EXPECT_EQ(p.name(), "xorp_bgp");
    EXPECT_EQ(p.schedPriority(), sim::priority::kernel);
    EXPECT_EQ(p.pinnedCpu(), 2);
}
