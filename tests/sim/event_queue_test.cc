/**
 * @file
 * Tests for the discrete-event simulator core.
 */

#include <gtest/gtest.h>

#include "net/logging.hh"
#include "sim/event_queue.hh"

using namespace bgpbench;
using sim::SimTime;
using sim::Simulator;

TEST(Simulator, StartsAtZero)
{
    Simulator sim;
    EXPECT_EQ(sim.now(), 0u);
    EXPECT_EQ(sim.pendingEvents(), 0u);
    EXPECT_FALSE(sim.step());
}

TEST(Simulator, EventsRunInTimeOrder)
{
    Simulator sim;
    std::vector<int> order;
    sim.schedule(30, [&]() { order.push_back(3); });
    sim.schedule(10, [&]() { order.push_back(1); });
    sim.schedule(20, [&]() { order.push_back(2); });
    sim.runUntilIdle();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(sim.now(), 30u);
    EXPECT_EQ(sim.eventsExecuted(), 3u);
}

TEST(Simulator, EqualTimestampsRunFifo)
{
    Simulator sim;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        sim.schedule(5, [&order, i]() { order.push_back(i); });
    sim.runUntilIdle();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[size_t(i)], i);
}

TEST(Simulator, SchedulingInThePastPanics)
{
    Simulator sim;
    sim.schedule(10, []() {});
    sim.runUntilIdle();
    EXPECT_THROW(sim.schedule(5, []() {}), PanicError);
}

TEST(Simulator, HandlersMayScheduleMoreEvents)
{
    Simulator sim;
    int count = 0;
    std::function<void()> chain = [&]() {
        ++count;
        if (count < 5)
            sim.scheduleIn(10, chain);
    };
    sim.scheduleIn(10, chain);
    sim.runUntilIdle();
    EXPECT_EQ(count, 5);
    EXPECT_EQ(sim.now(), 50u);
}

TEST(Simulator, RunUntilStopsAtBoundary)
{
    Simulator sim;
    int fired = 0;
    sim.schedule(10, [&]() { ++fired; });
    sim.schedule(20, [&]() { ++fired; });
    sim.schedule(30, [&]() { ++fired; });

    sim.runUntil(20);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(sim.now(), 20u);
    EXPECT_EQ(sim.nextEventTime(), 30u);

    // Advancing with no events in range moves the clock only.
    sim.runUntil(25);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(sim.now(), 25u);
}

TEST(Simulator, ScheduleEveryRepeatsUntilFalse)
{
    Simulator sim;
    int ticks = 0;
    sim.scheduleEvery(100, [&]() {
        ++ticks;
        return ticks < 4;
    });
    sim.runUntilIdle();
    EXPECT_EQ(ticks, 4);
    EXPECT_EQ(sim.now(), 400u);
}

TEST(Simulator, ScheduleEveryStaysOnPeriodGrid)
{
    // Regression test for periodic-timer drift: every firing must
    // land on an exact multiple of the period, even when the handler
    // schedules other work between firings. A drifting
    // implementation (anchoring on anything but the firing time)
    // would accumulate offset over many periods.
    Simulator sim;
    std::vector<SimTime> firings;
    int count = 0;
    sim.scheduleEvery(7, [&]() {
        firings.push_back(sim.now());
        sim.scheduleIn(3, []() {});
        return ++count < 1000;
    });
    sim.runUntilIdle();
    ASSERT_EQ(firings.size(), 1000u);
    for (size_t i = 0; i < firings.size(); ++i)
        EXPECT_EQ(firings[i], 7u * (i + 1));
}

TEST(Simulator, ScheduleEveryZeroPeriodPanics)
{
    Simulator sim;
    EXPECT_THROW(sim.scheduleEvery(0, []() { return false; }),
                 PanicError);
}

TEST(Simulator, NextEventTimeWhenEmpty)
{
    Simulator sim;
    EXPECT_EQ(sim.nextEventTime(), sim::simTimeNever);
}

TEST(Simulator, StepExecutesExactlyOne)
{
    Simulator sim;
    int fired = 0;
    sim.schedule(1, [&]() { ++fired; });
    sim.schedule(2, [&]() { ++fired; });
    EXPECT_TRUE(sim.step());
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(sim.now(), 1u);
    EXPECT_TRUE(sim.step());
    EXPECT_FALSE(sim.step());
}

TEST(Simulator, KeyedEventsOrderByKeyAtEqualTime)
{
    // Scheduling order is 3, 1, 2 — execution must follow the keys,
    // not the insertion order.
    Simulator sim;
    std::vector<int> order;
    sim.schedule(10, 3, [&]() { order.push_back(3); });
    sim.schedule(10, 1, [&]() { order.push_back(1); });
    sim.schedule(10, 2, [&]() { order.push_back(2); });
    sim.runUntilIdle();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, KeyZeroRunsBeforeKeyedEvents)
{
    // Key 0 is the rank of scenario/fault events; at equal times they
    // precede every message event (whose keys are never zero).
    Simulator sim;
    std::vector<int> order;
    sim.schedule(10, 7, [&]() { order.push_back(7); });
    sim.schedule(10, [&]() { order.push_back(0); });
    sim.runUntilIdle();
    EXPECT_EQ(order, (std::vector<int>{0, 7}));
}

TEST(Simulator, EqualKeysFallBackToSchedulingOrder)
{
    Simulator sim;
    std::vector<int> order;
    sim.schedule(10, 5, [&]() { order.push_back(1); });
    sim.schedule(10, 5, [&]() { order.push_back(2); });
    sim.schedule(10, 5, [&]() { order.push_back(3); });
    sim.runUntilIdle();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, RunBeforeStopsStrictlyBelowEnd)
{
    Simulator sim;
    int fired = 0;
    sim.schedule(5, [&]() { ++fired; });
    sim.schedule(10, [&]() { ++fired; });
    sim.schedule(15, [&]() { ++fired; });

    // Strict bound: the event AT the window end stays pending, and
    // the clock stays at the last executed event — the conservative
    // window contract of the parallel engine.
    EXPECT_EQ(sim.runBefore(10), 1u);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(sim.now(), 5u);
    EXPECT_EQ(sim.nextEventTime(), 10u);

    EXPECT_EQ(sim.runBefore(11), 1u);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(sim.now(), 10u);

    EXPECT_EQ(sim.runBefore(10), 0u);
    EXPECT_EQ(sim.now(), 10u);
}

TEST(Simulator, RunBeforeRunsEventsSpawnedInsideTheWindow)
{
    Simulator sim;
    std::vector<SimTime> fired;
    sim.schedule(2, [&]() {
        fired.push_back(sim.now());
        sim.schedule(4, [&]() { fired.push_back(sim.now()); });
        sim.schedule(30, [&]() { fired.push_back(sim.now()); });
    });
    EXPECT_EQ(sim.runBefore(10), 2u);
    EXPECT_EQ(fired, (std::vector<SimTime>{2, 4}));
    EXPECT_EQ(sim.pendingEvents(), 1u);
}

TEST(Simulator, ScheduleEveryKeepsOneTaskAcrossRecurrences)
{
    // The periodic closure must observe state captured once, across
    // many firings (the task is stored once and re-armed in place,
    // never re-wrapped).
    Simulator sim;
    int ticks = 0;
    int *captured = &ticks;
    sim.scheduleEvery(3, [captured]() { return ++*captured < 1000; });
    sim.runUntilIdle();
    EXPECT_EQ(ticks, 1000);
    EXPECT_EQ(sim.now(), 3000u);
    EXPECT_EQ(sim.eventsExecuted(), 1000u);
}

TEST(SimTime, Conversions)
{
    EXPECT_EQ(sim::nsFromUs(3), 3000u);
    EXPECT_EQ(sim::nsFromMs(2), 2'000'000u);
    EXPECT_EQ(sim::nsFromSec(1.5), 1'500'000'000u);
    EXPECT_DOUBLE_EQ(sim::toSeconds(2'500'000'000ull), 2.5);
}
