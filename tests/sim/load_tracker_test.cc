/**
 * @file
 * Tests for the CPU-load tracker.
 */

#include <gtest/gtest.h>

#include "sim/load_tracker.hh"

using namespace bgpbench;
using sim::CpuLoadTracker;
using sim::SimProcess;

TEST(CpuLoadTracker, ConvertsCyclesToPercent)
{
    // 1 GHz core, 1 s interval: 5e8 consumed cycles = 50%.
    CpuLoadTracker tracker(1e9, 1.0);
    SimProcess p(SimProcess::Config{"p", 10, -1});
    tracker.track(&p);

    p.post(500'000'000);
    p.grant(500'000'000);
    tracker.sample(sim::nsFromSec(1.0));

    ASSERT_EQ(tracker.series(0).bucketCount(), 1u);
    EXPECT_NEAR(tracker.series(0).bucket(0), 50.0, 0.01);
}

TEST(CpuLoadTracker, SamplesAttributeToPrecedingInterval)
{
    CpuLoadTracker tracker(1e9, 1.0);
    SimProcess p(SimProcess::Config{"p", 10, -1});
    tracker.track(&p);

    // Nothing in second 0; full load in second 1.
    tracker.sample(sim::nsFromSec(1.0));
    p.post(1'000'000'000);
    p.grant(1'000'000'000);
    tracker.sample(sim::nsFromSec(2.0));

    EXPECT_NEAR(tracker.series(0).bucket(0), 0.0, 1e-9);
    EXPECT_NEAR(tracker.series(0).bucket(1), 100.0, 0.01);
}

TEST(CpuLoadTracker, TracksMultipleProcessesIndependently)
{
    CpuLoadTracker tracker(1e9, 1.0);
    SimProcess a(SimProcess::Config{"a", 10, -1});
    SimProcess b(SimProcess::Config{"b", 10, -1});
    tracker.track(&a);
    tracker.track(&b);

    a.post(200'000'000);
    a.grant(200'000'000);
    b.post(700'000'000);
    b.grant(700'000'000);
    tracker.sample(sim::nsFromSec(1.0));

    EXPECT_NEAR(tracker.series(0).bucket(0), 20.0, 0.01);
    EXPECT_NEAR(tracker.series(1).bucket(0), 70.0, 0.01);
    EXPECT_EQ(tracker.trackedCount(), 2u);
}

TEST(CpuLoadTracker, SeriesNamedAfterProcesses)
{
    CpuLoadTracker tracker(1e9, 1.0);
    SimProcess p(SimProcess::Config{"xorp_bgp", 10, -1});
    tracker.track(&p);
    EXPECT_EQ(tracker.series(0).name(), "xorp_bgp");
    auto all = tracker.allSeries();
    ASSERT_EQ(all.size(), 1u);
    EXPECT_EQ(all[0]->name(), "xorp_bgp");
}

TEST(CpuLoadTracker, SamplingResetsIntervalCounter)
{
    CpuLoadTracker tracker(1e9, 1.0);
    SimProcess p(SimProcess::Config{"p", 10, -1});
    tracker.track(&p);

    p.post(400'000'000);
    p.grant(400'000'000);
    tracker.sample(sim::nsFromSec(1.0));
    // No further work: next sample must read zero.
    tracker.sample(sim::nsFromSec(2.0));
    EXPECT_NEAR(tracker.series(0).bucket(1), 0.0, 1e-9);
}
