/**
 * @file
 * Integration tests for the simulated router: protocol processing
 * paced by virtual CPU, pipeline, flow control, and the data plane.
 */

#include <gtest/gtest.h>

#include "core/test_peer.hh"
#include "net/logging.hh"
#include "router/router_system.hh"
#include "router/system_profiles.hh"
#include "workload/update_stream.hh"

using namespace bgpbench;
using namespace bgpbench::router;

namespace
{

RouterConfig
twoPeersConfig()
{
    RouterConfig rc;
    rc.localAs = 65000;
    rc.routerId = 0x0a000001;
    rc.address = net::Ipv4Address(10, 0, 0, 1);

    bgp::PeerConfig p1;
    p1.id = 0;
    p1.asn = 65001;
    p1.address = net::Ipv4Address(10, 0, 1, 2);
    bgp::PeerConfig p2;
    p2.id = 1;
    p2.asn = 65002;
    p2.address = net::Ipv4Address(10, 0, 2, 2);
    rc.peers = {p1, p2};
    return rc;
}

std::vector<workload::RouteSpec>
routes(size_t count)
{
    workload::RouteSetConfig config;
    config.count = count;
    config.seed = 9;
    return generateRouteSet(config);
}

workload::StreamConfig
streamConfig(size_t per_packet = 1)
{
    workload::StreamConfig c;
    c.speakerAs = 65001;
    c.nextHop = net::Ipv4Address(10, 0, 1, 2);
    c.prefixesPerPacket = per_packet;
    return c;
}

/** Run the sim in 1 ms hops until cond or deadline. */
bool
runUntil(sim::Simulator &sim, const std::function<bool()> &cond,
         double limit_sec = 600.0)
{
    while (!cond()) {
        if (sim::toSeconds(sim.now()) > limit_sec)
            return false;
        sim.runUntil(sim.now() + sim::nsFromMs(1));
    }
    return true;
}

struct World
{
    sim::Simulator sim;
    RouterSystem router;
    core::TestPeer peer1;
    core::TestPeer peer2;

    explicit World(SystemProfile profile)
        : router(&sim, std::move(profile), twoPeersConfig()),
          peer1(&sim, core::TestPeerConfig{65001, 0x0a000102,
                                           net::Ipv4Address(10, 0, 1,
                                                            2),
                                           180, 30.0},
                &router, 0),
          peer2(&sim, core::TestPeerConfig{65002, 0x0a000202,
                                           net::Ipv4Address(10, 0, 2,
                                                            2),
                                           180, 30.0},
                &router, 1)
    {
        router.start();
    }

    bool
    establish1()
    {
        peer1.connect();
        return runUntil(sim, [&]() {
            return peer1.established() && router.controlDrained();
        });
    }
};

} // namespace

TEST(RouterSystem, RequiresPeers)
{
    sim::Simulator sim;
    RouterConfig rc;
    rc.peers.clear();
    EXPECT_THROW(RouterSystem(&sim, pentium3Profile(), rc),
                 FatalError);
}

TEST(RouterSystem, HandshakeEstablishesSession)
{
    World w(pentium3Profile());
    ASSERT_TRUE(w.establish1());
    EXPECT_EQ(w.router.speaker().sessionState(0),
              bgp::SessionState::Established);
    // Processing the OPEN and KEEPALIVE consumed virtual time.
    EXPECT_GT(w.sim.now(), 0u);
}

TEST(RouterSystem, UpdatesReachFibAfterDrain)
{
    World w(pentium3Profile());
    ASSERT_TRUE(w.establish1());

    auto rs = routes(100);
    auto packets = buildAnnouncementStream(rs, streamConfig(10));
    w.peer1.enqueueStream(std::move(packets));

    ASSERT_TRUE(runUntil(w.sim, [&]() {
        return w.peer1.sendComplete() && w.router.controlDrained();
    }));

    EXPECT_EQ(w.router.speaker().counters().announcementsProcessed,
              100u);
    EXPECT_EQ(w.router.speaker().locRib().size(), 100u);
    EXPECT_EQ(w.router.fib().size(), 100u);
    EXPECT_EQ(w.router.controlPlane().fibChangesApplied, 100u);

    // Every prefix is reachable through the FIB.
    for (const auto &r : rs) {
        EXPECT_NE(w.router.fib().exact(r.prefix), nullptr)
            << r.prefix.toString();
    }
}

TEST(RouterSystem, ProcessingTakesVirtualTimeProportionalToWork)
{
    World w(pentium3Profile());
    ASSERT_TRUE(w.establish1());

    double t0 = sim::toSeconds(w.sim.now());
    auto rs = routes(200);
    w.peer1.enqueueStream(
        buildAnnouncementStream(rs, streamConfig(1)));
    ASSERT_TRUE(runUntil(w.sim, [&]() {
        return w.router.controlDrained() &&
               w.router.speaker().counters().announcementsProcessed >=
                   200;
    }));
    double elapsed = sim::toSeconds(w.sim.now()) - t0;

    // The Pentium III handles small-packet start-up announcements at
    // roughly 185 tps (Table III): 200 prefixes ~ 1 second. Allow a
    // generous band; the point is that virtual time is charged.
    EXPECT_GT(elapsed, 0.5);
    EXPECT_LT(elapsed, 3.0);
}

TEST(RouterSystem, WithdrawalsEmptyTheFib)
{
    World w(pentium3Profile());
    ASSERT_TRUE(w.establish1());

    auto rs = routes(50);
    w.peer1.enqueueStream(
        buildAnnouncementStream(rs, streamConfig(10)));
    ASSERT_TRUE(runUntil(w.sim, [&]() {
        return w.router.controlDrained() &&
               w.router.fib().size() == 50;
    }));

    w.peer1.enqueueStream(
        buildWithdrawalStream(rs, streamConfig(10)));
    ASSERT_TRUE(runUntil(w.sim, [&]() {
        return w.router.controlDrained() &&
               w.router.speaker().counters().withdrawalsProcessed >=
                   50;
    }));
    EXPECT_EQ(w.router.fib().size(), 0u);
    EXPECT_EQ(w.router.speaker().locRib().size(), 0u);
}

TEST(RouterSystem, SecondPeerReceivesFullTable)
{
    World w(pentium3Profile());
    ASSERT_TRUE(w.establish1());

    auto rs = routes(60);
    w.peer1.enqueueStream(
        buildAnnouncementStream(rs, streamConfig(10)));
    ASSERT_TRUE(runUntil(w.sim, [&]() {
        return w.router.controlDrained() &&
               w.router.fib().size() == 60;
    }));

    w.peer2.connect();
    ASSERT_TRUE(runUntil(w.sim, [&]() {
        return w.peer2.established() &&
               w.peer2.counters().announcementsReceived >= 60 &&
               w.router.controlDrained();
    }));
    EXPECT_EQ(w.peer2.counters().announcementsReceived, 60u);
    // Outbound updates were packed, not one per prefix.
    EXPECT_LT(w.peer2.counters().updatesReceived, 60u);
}

TEST(RouterSystem, FlowControlBoundsReceiveBuffer)
{
    SystemProfile profile = pentium3Profile();
    profile.rxBufferBytes = 4096;
    World w(profile);
    ASSERT_TRUE(w.establish1());

    // Enqueue far more than the buffer in one go.
    auto rs = routes(400);
    w.peer1.enqueueStream(
        buildAnnouncementStream(rs, streamConfig(1)));
    // Immediately after enqueue, most packets are still held by the
    // test peer, not the router.
    EXPECT_GT(w.peer1.pendingPackets(), 300u);
    EXPECT_LE(w.router.rxSpace(0), 4096u);

    ASSERT_TRUE(runUntil(w.sim, [&]() {
        return w.peer1.sendComplete() && w.router.controlDrained();
    }));
    EXPECT_EQ(w.router.speaker().counters().announcementsProcessed,
              400u);
    EXPECT_EQ(w.router.rxSpace(0), 4096u);
}

TEST(RouterSystem, SessionSurvivesQuietPeriodViaKeepalives)
{
    World w(pentium3Profile());
    ASSERT_TRUE(w.establish1());

    // 400 simulated seconds of silence: longer than the 180 s hold
    // time; the peer's periodic keepalives must keep the session up.
    w.sim.runUntil(w.sim.now() + sim::nsFromSec(400.0));
    EXPECT_EQ(w.router.speaker().sessionState(0),
              bgp::SessionState::Established);
    EXPECT_GT(w.peer1.counters().keepalivesReceived, 2u);
}

TEST(RouterSystem, MonolithicGatePacesSmallMessages)
{
    World w(ciscoProfile());
    ASSERT_TRUE(w.establish1());

    double t0 = sim::toSeconds(w.sim.now());
    auto rs = routes(10);
    w.peer1.enqueueStream(
        buildAnnouncementStream(rs, streamConfig(1)));
    ASSERT_TRUE(runUntil(w.sim, [&]() {
        return w.router.controlDrained() &&
               w.router.speaker().counters().announcementsProcessed >=
                   10;
    }));
    double elapsed = sim::toSeconds(w.sim.now()) - t0;
    // ~92.5 ms per message: 10 messages ~ 0.9 s.
    EXPECT_GT(elapsed, 0.7);
    EXPECT_LT(elapsed, 1.5);
}

TEST(RouterSystem, StaticRouteForwardsCrossTraffic)
{
    World w(pentium3Profile());
    w.router.installStaticRoute(
        net::Prefix::fromString("198.18.0.0/15"),
        net::Ipv4Address(10, 0, 2, 2), 2);

    workload::CrossTrafficConfig ct;
    ct.mbps = 100.0;
    ct.packetBytes = 1000;
    w.router.setCrossTraffic(ct);

    w.sim.runUntil(sim::nsFromSec(2.0));
    const auto &dp = w.router.dataPlane();
    // 100 Mbps at 1000 B = 12.5 kpps; two seconds ~ 25000 packets.
    EXPECT_NEAR(double(dp.offeredPackets), 25000.0, 500.0);
    EXPECT_NEAR(double(dp.forwardedPackets),
                double(dp.offeredPackets), 500.0);
    EXPECT_EQ(dp.busDrops, 0u);
}

TEST(RouterSystem, BusLimitDropsExcessTraffic)
{
    World w(pentium3Profile()); // 315 Mbps PCI limit
    w.router.installStaticRoute(
        net::Prefix::fromString("198.18.0.0/15"),
        net::Ipv4Address(10, 0, 2, 2), 2);

    workload::CrossTrafficConfig ct;
    ct.mbps = 630.0; // twice the bus limit
    ct.packetBytes = 1000;
    w.router.setCrossTraffic(ct);

    w.sim.runUntil(sim::nsFromSec(2.0));
    const auto &dp = w.router.dataPlane();
    EXPECT_GT(dp.busDrops, 0u);
    // Roughly half the offered load is dropped at the bus.
    EXPECT_NEAR(double(dp.busDrops) / double(dp.offeredPackets), 0.5,
                0.05);
}

TEST(RouterSystem, UnroutableCrossTrafficIsDropped)
{
    World w(pentium3Profile());
    // No static route installed.
    workload::CrossTrafficConfig ct;
    ct.mbps = 50.0;
    ct.packetBytes = 1000;
    w.router.setCrossTraffic(ct);

    w.sim.runUntil(sim::nsFromSec(1.0));
    EXPECT_EQ(w.router.dataPlane().forwardedPackets, 0u);
    EXPECT_GT(w.router.dataPlane().queueDrops, 0u);
}

TEST(RouterSystem, SeparateDataPlaneChargesNoControlCpu)
{
    World w(ixp2400Profile());
    w.router.installStaticRoute(
        net::Prefix::fromString("198.18.0.0/15"),
        net::Ipv4Address(10, 0, 2, 2), 2);

    workload::CrossTrafficConfig ct;
    ct.mbps = 900.0;
    ct.packetBytes = 1000;
    w.router.setCrossTraffic(ct);

    w.sim.runUntil(sim::nsFromSec(2.0));
    const auto &dp = w.router.dataPlane();
    EXPECT_GT(dp.forwardedPackets, 200'000u);
    // The control CPU never saw a cycle of it: utilisation ~ idle
    // (only rtrmgr/policy background).
    EXPECT_LT(w.router.loadTracker().series(5).peak() +
                  w.router.loadTracker().series(6).peak(),
              1.0);
}

TEST(RouterSystem, CrossTrafficLoadsKernelOnSharedSystems)
{
    World w(pentium3Profile());
    w.router.installStaticRoute(
        net::Prefix::fromString("198.18.0.0/15"),
        net::Ipv4Address(10, 0, 2, 2), 2);

    workload::CrossTrafficConfig ct;
    ct.mbps = 300.0;
    ct.packetBytes = 1000;
    w.router.setCrossTraffic(ct);

    w.sim.runUntil(sim::nsFromSec(3.0));

    // Interrupt + system load is substantial (paper: 20-30% at
    // 300 Mbps for interrupts alone).
    double irq_peak = 0.0;
    double sys_peak = 0.0;
    auto all = w.router.loadTracker().allSeries();
    for (const auto *s : all) {
        if (s->name() == "interrupts")
            irq_peak = s->peak();
        if (s->name() == "system")
            sys_peak = s->peak();
    }
    EXPECT_GT(irq_peak, 15.0);
    EXPECT_GT(sys_peak, 10.0);
}

TEST(RouterSystem, ForwardingRateSeriesRecordsBytes)
{
    World w(pentium3Profile());
    w.router.installStaticRoute(
        net::Prefix::fromString("198.18.0.0/15"),
        net::Ipv4Address(10, 0, 2, 2), 2);
    workload::CrossTrafficConfig ct;
    ct.mbps = 80.0;
    ct.packetBytes = 1000;
    w.router.setCrossTraffic(ct);

    w.sim.runUntil(sim::nsFromSec(3.0));
    const auto &series = w.router.forwardingBytesSeries();
    ASSERT_GE(series.bucketCount(), 2u);
    // 80 Mbps = 10 MB/s per bucket.
    EXPECT_NEAR(series.bucket(1), 10e6, 1e6);
}

TEST(RouterSystem, ShutdownStopsEventFlood)
{
    World w(pentium3Profile());
    w.sim.runUntil(sim::nsFromSec(0.5));
    w.router.shutdown();
    // All periodic events unwind; the queue eventually empties.
    w.sim.runUntilIdle();
    EXPECT_EQ(w.sim.pendingEvents(), 0u);
}

TEST(RouterSystem, BadPortIndexPanics)
{
    World w(pentium3Profile());
    EXPECT_THROW(w.router.rxSpace(7), PanicError);
    EXPECT_THROW(w.router.connectPeer(7), PanicError);
    EXPECT_THROW(w.router.deliverToPort(7, std::vector<uint8_t>{}),
                 PanicError);
}
