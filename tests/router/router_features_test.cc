/**
 * @file
 * Router-level tests for the protocol extensions: route refresh and
 * flap damping flowing through the simulated system (costs charged,
 * pipeline drained).
 */

#include <gtest/gtest.h>

#include "core/test_peer.hh"
#include "router/router_system.hh"
#include "router/system_profiles.hh"
#include "workload/churn.hh"
#include "workload/update_stream.hh"

using namespace bgpbench;
using namespace bgpbench::router;

namespace
{

RouterConfig
config(bool damping = false)
{
    RouterConfig rc;
    rc.localAs = 65000;
    rc.routerId = 0x0a000001;
    rc.address = net::Ipv4Address(10, 0, 0, 1);
    bgp::PeerConfig p1;
    p1.id = 0;
    p1.asn = 65001;
    p1.address = net::Ipv4Address(10, 0, 1, 2);
    bgp::PeerConfig p2;
    p2.id = 1;
    p2.asn = 65002;
    p2.address = net::Ipv4Address(10, 0, 2, 2);
    rc.peers = {p1, p2};
    rc.damping.enabled = damping;
    return rc;
}

bool
runUntil(sim::Simulator &sim, const std::function<bool()> &cond,
         double limit_sec = 600.0)
{
    while (!cond()) {
        if (sim::toSeconds(sim.now()) > limit_sec)
            return false;
        sim.runUntil(sim.now() + sim::nsFromMs(1));
    }
    return true;
}

workload::StreamConfig
streamConfig(size_t per_packet = 10)
{
    workload::StreamConfig sc;
    sc.speakerAs = 65001;
    sc.nextHop = net::Ipv4Address(10, 0, 1, 2);
    sc.prefixesPerPacket = per_packet;
    return sc;
}

} // namespace

TEST(RouterFeatures, RouteRefreshResendsTableThroughPipeline)
{
    sim::Simulator sim;
    RouterSystem router(&sim, xeonProfile(), config());
    core::TestPeer peer1(&sim, core::TestPeerConfig{}, &router, 0);
    core::TestPeer peer2(
        &sim,
        core::TestPeerConfig{65002, 0x0a000202,
                             net::Ipv4Address(10, 0, 2, 2), 180,
                             30.0},
        &router, 1);
    router.start();

    peer1.connect();
    ASSERT_TRUE(runUntil(sim, [&]() { return peer1.established(); }));

    workload::RouteSetConfig rsc;
    rsc.count = 80;
    auto routes = workload::generateRouteSet(rsc);
    peer1.enqueueStream(
        workload::buildAnnouncementStream(routes, streamConfig()));
    ASSERT_TRUE(runUntil(sim, [&]() {
        return router.controlDrained() && router.fib().size() == 80;
    }));

    peer2.connect();
    ASSERT_TRUE(runUntil(sim, [&]() {
        return peer2.established() &&
               peer2.counters().announcementsReceived >= 80 &&
               router.controlDrained();
    }));
    ASSERT_EQ(peer2.counters().announcementsReceived, 80u);

    // Peer 2 loses its table (e.g. an operator clear) and asks for a
    // refresh: the router re-sends all 80 routes, paced by the CPU.
    double t0 = sim::toSeconds(sim.now());
    peer2.sendRouteRefresh();
    ASSERT_TRUE(runUntil(sim, [&]() {
        return peer2.counters().announcementsReceived >= 160 &&
               router.controlDrained();
    }));
    EXPECT_EQ(peer2.counters().announcementsReceived, 160u);
    // The re-advertisement consumed simulated processing time.
    EXPECT_GT(sim::toSeconds(sim.now()), t0);
}

TEST(RouterFeatures, DampingSuppressesFlappersInRouter)
{
    sim::Simulator sim;
    RouterSystem router(&sim, xeonProfile(), config(true));
    core::TestPeer peer(&sim, core::TestPeerConfig{}, &router, 0);
    router.start();
    peer.connect();
    ASSERT_TRUE(runUntil(sim, [&]() { return peer.established(); }));

    workload::RouteSetConfig rsc;
    rsc.count = 100;
    auto routes = workload::generateRouteSet(rsc);
    peer.enqueueStream(
        workload::buildAnnouncementStream(routes, streamConfig()));
    ASSERT_TRUE(runUntil(sim, [&]() {
        return router.controlDrained() && router.fib().size() == 100;
    }));

    // Flap storm over 10 prefixes.
    workload::ChurnConfig cc;
    cc.stream = streamConfig();
    cc.events = 400;
    cc.flappingFraction = 0.1;
    cc.withdrawFraction = 0.5;
    peer.enqueueStream(buildChurnStream(routes, cc));
    ASSERT_TRUE(runUntil(sim, [&]() {
        return peer.sendComplete() && router.controlDrained();
    }));

    const auto &counters = router.speaker().counters();
    EXPECT_GT(counters.announcementsSuppressed, 0u);
    // Suppressed flappers are out of the table; stable routes stay.
    EXPECT_LT(router.speaker().locRib().size(), 100u);
    EXPECT_GE(router.speaker().locRib().size(), 90u);
    EXPECT_EQ(router.speaker().locRib().size(), router.fib().size());
}

TEST(RouterFeatures, DampingDisabledKeepsFullTable)
{
    sim::Simulator sim;
    RouterSystem router(&sim, xeonProfile(), config(false));
    core::TestPeer peer(&sim, core::TestPeerConfig{}, &router, 0);
    router.start();
    peer.connect();
    ASSERT_TRUE(runUntil(sim, [&]() { return peer.established(); }));

    workload::RouteSetConfig rsc;
    rsc.count = 100;
    auto routes = workload::generateRouteSet(rsc);
    peer.enqueueStream(
        workload::buildAnnouncementStream(routes, streamConfig()));
    ASSERT_TRUE(runUntil(sim, [&]() {
        return router.controlDrained() && router.fib().size() == 100;
    }));

    workload::ChurnConfig cc;
    cc.stream = streamConfig();
    cc.events = 400;
    cc.flappingFraction = 0.1;
    cc.withdrawFraction = 0.5;
    peer.enqueueStream(buildChurnStream(routes, cc));
    ASSERT_TRUE(runUntil(sim, [&]() {
        return peer.sendComplete() && router.controlDrained();
    }));

    EXPECT_EQ(router.speaker().counters().announcementsSuppressed,
              0u);
    // Churn converges back to the full table.
    EXPECT_EQ(router.speaker().locRib().size(), 100u);
    EXPECT_EQ(router.fib().size(), 100u);
}
