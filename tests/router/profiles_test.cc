/**
 * @file
 * Sanity tests over the four calibrated system profiles (Table II).
 */

#include <gtest/gtest.h>

#include "net/logging.hh"
#include "router/system_profiles.hh"

using namespace bgpbench;
using namespace bgpbench::router;

TEST(SystemProfiles, FourSystemsInPaperOrder)
{
    auto profiles = allSystemProfiles();
    ASSERT_EQ(profiles.size(), 4u);
    EXPECT_EQ(profiles[0].name, "PentiumIII");
    EXPECT_EQ(profiles[1].name, "Xeon");
    EXPECT_EQ(profiles[2].name, "IXP2400");
    EXPECT_EQ(profiles[3].name, "Cisco");
}

TEST(SystemProfiles, LookupByNameIsCaseInsensitive)
{
    EXPECT_EQ(profileByName("xeon").name, "Xeon");
    EXPECT_EQ(profileByName("CISCO").name, "Cisco");
    EXPECT_EQ(profileByName("ixp2400").name, "IXP2400");
    EXPECT_THROW(profileByName("quantum9000"), FatalError);
}

TEST(SystemProfiles, ArchitectureClasses)
{
    EXPECT_EQ(pentium3Profile().architecture, Architecture::UniCore);
    EXPECT_EQ(xeonProfile().architecture, Architecture::DualCore);
    EXPECT_EQ(ixp2400Profile().architecture,
              Architecture::NetworkProcessor);
    EXPECT_EQ(ciscoProfile().architecture, Architecture::Commercial);
}

TEST(SystemProfiles, CoreCounts)
{
    EXPECT_EQ(pentium3Profile().cpu.logicalCpus(), 1);
    EXPECT_EQ(xeonProfile().cpu.logicalCpus(), 4); // 2 cores x 2 HT
    EXPECT_EQ(ixp2400Profile().cpu.logicalCpus(), 1);
    EXPECT_EQ(ciscoProfile().cpu.logicalCpus(), 1);
}

TEST(SystemProfiles, BusLimitsMatchPaperSectionVB)
{
    EXPECT_DOUBLE_EQ(pentium3Profile().busLimitMbps, 315.0);
    EXPECT_DOUBLE_EQ(xeonProfile().busLimitMbps, 784.0);
    EXPECT_DOUBLE_EQ(ixp2400Profile().busLimitMbps, 940.0);
    EXPECT_DOUBLE_EQ(ciscoProfile().busLimitMbps, 78.0);
}

TEST(SystemProfiles, OnlyNetworkProcessorSeparatesDataPlane)
{
    EXPECT_FALSE(pentium3Profile().separateDataPlane);
    EXPECT_FALSE(xeonProfile().separateDataPlane);
    EXPECT_TRUE(ixp2400Profile().separateDataPlane);
    EXPECT_FALSE(ciscoProfile().separateDataPlane);
}

TEST(SystemProfiles, OnlyCommercialIsMonolithic)
{
    EXPECT_FALSE(pentium3Profile().monolithicControl);
    EXPECT_FALSE(xeonProfile().monolithicControl);
    EXPECT_FALSE(ixp2400Profile().monolithicControl);
    EXPECT_TRUE(ciscoProfile().monolithicControl);
}

TEST(SystemProfiles, OnlyCommercialHasMessageGate)
{
    EXPECT_EQ(pentium3Profile().costs.msgGateNs, 0u);
    EXPECT_EQ(xeonProfile().costs.msgGateNs, 0u);
    EXPECT_EQ(ixp2400Profile().costs.msgGateNs, 0u);
    EXPECT_GT(ciscoProfile().costs.msgGateNs, 0u);
}

TEST(SystemProfiles, XeonIsFastestXorpSystem)
{
    // Effective per-prefix decision time = cycles / clock.
    auto time_of = [](const SystemProfile &p) {
        return p.costs.announcePrefix / p.cpu.cyclesPerSecond;
    };
    EXPECT_LT(time_of(xeonProfile()), time_of(pentium3Profile()));
    EXPECT_LT(time_of(pentium3Profile()), time_of(ixp2400Profile()));
}

TEST(SystemProfiles, CostsArePositiveWhereRequired)
{
    for (const auto &p : allSystemProfiles()) {
        EXPECT_GT(p.costs.msgParse, 0) << p.name;
        EXPECT_GT(p.costs.announcePrefix, 0) << p.name;
        EXPECT_GT(p.costs.withdrawPrefix, 0) << p.name;
        EXPECT_GT(p.costs.kernelRouteInstall, 0) << p.name;
        EXPECT_GE(p.costs.kernelRouteReplace,
                  p.costs.kernelRouteInstall) << p.name;
        EXPECT_GT(p.costs.ipcBatchMax, 0u) << p.name;
        EXPECT_GT(p.rxBufferBytes, 4096u) << p.name;
    }
}

TEST(SystemProfiles, NetworkProcessorChargesNoForwardingCycles)
{
    auto p = ixp2400Profile();
    EXPECT_EQ(p.costs.irqPerPacket, 0);
    EXPECT_EQ(p.costs.forwardPerPacket, 0);
}
