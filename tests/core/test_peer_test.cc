/**
 * @file
 * Tests for the scripted test speaker.
 */

#include <gtest/gtest.h>

#include "core/test_peer.hh"
#include "net/logging.hh"
#include "router/system_profiles.hh"
#include "workload/update_stream.hh"

using namespace bgpbench;
using namespace bgpbench::core;

namespace
{

router::RouterConfig
oneRouterConfig()
{
    router::RouterConfig rc;
    rc.localAs = 65000;
    rc.routerId = 0x0a000001;
    rc.address = net::Ipv4Address(10, 0, 0, 1);
    bgp::PeerConfig p1;
    p1.id = 0;
    p1.asn = 65001;
    p1.address = net::Ipv4Address(10, 0, 1, 2);
    bgp::PeerConfig p2;
    p2.id = 1;
    p2.asn = 65002;
    p2.address = net::Ipv4Address(10, 0, 2, 2);
    rc.peers = {p1, p2};
    return rc;
}

bool
runUntil(sim::Simulator &sim, const std::function<bool()> &cond,
         double limit_sec = 120.0)
{
    while (!cond()) {
        if (sim::toSeconds(sim.now()) > limit_sec)
            return false;
        sim.runUntil(sim.now() + sim::nsFromMs(1));
    }
    return true;
}

} // namespace

TEST(TestPeer, EstablishesAgainstRouter)
{
    sim::Simulator sim;
    router::RouterSystem router(&sim, router::xeonProfile(),
                                oneRouterConfig());
    TestPeer peer(&sim, TestPeerConfig{}, &router, 0);
    router.start();

    EXPECT_FALSE(peer.established());
    peer.connect();
    ASSERT_TRUE(runUntil(sim, [&]() { return peer.established(); }));
    EXPECT_GE(peer.counters().keepalivesReceived, 1u);
    EXPECT_GT(peer.counters().segmentsSent, 0u);
}

TEST(TestPeer, DoubleConnectPanics)
{
    sim::Simulator sim;
    router::RouterSystem router(&sim, router::xeonProfile(),
                                oneRouterConfig());
    TestPeer peer(&sim, TestPeerConfig{}, &router, 0);
    router.start();
    peer.connect();
    EXPECT_THROW(peer.connect(), PanicError);
}

TEST(TestPeer, StreamQueuedBeforeEstablishmentFlowsAfter)
{
    sim::Simulator sim;
    router::RouterSystem router(&sim, router::xeonProfile(),
                                oneRouterConfig());
    TestPeer peer(&sim, TestPeerConfig{}, &router, 0);
    router.start();

    workload::RouteSetConfig rsc;
    rsc.count = 30;
    auto routes = workload::generateRouteSet(rsc);
    workload::StreamConfig sc;
    sc.speakerAs = 65001;
    sc.nextHop = net::Ipv4Address(10, 0, 1, 2);
    peer.enqueueStream(workload::buildAnnouncementStream(routes, sc));
    EXPECT_FALSE(peer.sendComplete()); // not established yet

    peer.connect();
    ASSERT_TRUE(runUntil(sim, [&]() {
        return peer.sendComplete() && router.controlDrained();
    }));
    EXPECT_EQ(router.speaker().counters().announcementsProcessed,
              30u);
}

TEST(TestPeer, CountsUpdatesFromRouter)
{
    sim::Simulator sim;
    router::RouterSystem router(&sim, router::xeonProfile(),
                                oneRouterConfig());
    TestPeer peer1(&sim,
                   TestPeerConfig{65001, 0x0a000102,
                                  net::Ipv4Address(10, 0, 1, 2), 180,
                                  30.0},
                   &router, 0);
    TestPeer peer2(&sim,
                   TestPeerConfig{65002, 0x0a000202,
                                  net::Ipv4Address(10, 0, 2, 2), 180,
                                  30.0},
                   &router, 1);
    router.start();

    peer1.connect();
    ASSERT_TRUE(runUntil(sim, [&]() { return peer1.established(); }));

    workload::RouteSetConfig rsc;
    rsc.count = 40;
    auto routes = workload::generateRouteSet(rsc);
    workload::StreamConfig sc;
    sc.speakerAs = 65001;
    sc.nextHop = net::Ipv4Address(10, 0, 1, 2);
    sc.prefixesPerPacket = 10;
    peer1.enqueueStream(
        workload::buildAnnouncementStream(routes, sc));
    ASSERT_TRUE(runUntil(sim, [&]() {
        return router.controlDrained() &&
               router.fib().size() == 40;
    }));

    peer2.connect();
    ASSERT_TRUE(runUntil(sim, [&]() {
        return peer2.established() &&
               peer2.counters().announcementsReceived >= 40;
    }));
    EXPECT_EQ(peer2.counters().announcementsReceived, 40u);
    EXPECT_EQ(peer2.counters().withdrawalsReceived, 0u);
    EXPECT_GT(peer2.counters().updatesReceived, 0u);
}
