/**
 * @file
 * Tests for the Table I scenario definitions.
 */

#include <gtest/gtest.h>

#include "core/scenario.hh"
#include "net/logging.hh"

using namespace bgpbench;
using namespace bgpbench::core;

TEST(Scenario, TableIMapping)
{
    // Table I: scenarios 1/2 start-up announce, 3/4 ending withdraw,
    // 5/6 incremental no-change, 7/8 incremental change; odd = small.
    auto s1 = scenarioByNumber(1);
    EXPECT_EQ(s1.operation, BgpOperation::StartupAnnounce);
    EXPECT_EQ(s1.packetSize, PacketSize::Small);

    auto s2 = scenarioByNumber(2);
    EXPECT_EQ(s2.operation, BgpOperation::StartupAnnounce);
    EXPECT_EQ(s2.packetSize, PacketSize::Large);

    auto s3 = scenarioByNumber(3);
    EXPECT_EQ(s3.operation, BgpOperation::EndingWithdraw);
    EXPECT_EQ(s3.packetSize, PacketSize::Small);

    auto s6 = scenarioByNumber(6);
    EXPECT_EQ(s6.operation, BgpOperation::IncrementalNoChange);
    EXPECT_EQ(s6.packetSize, PacketSize::Large);

    auto s7 = scenarioByNumber(7);
    EXPECT_EQ(s7.operation, BgpOperation::IncrementalChange);
    EXPECT_EQ(s7.packetSize, PacketSize::Small);
}

TEST(Scenario, PacketSizes)
{
    EXPECT_EQ(scenarioByNumber(1).prefixesPerPacket(), 1u);
    EXPECT_EQ(scenarioByNumber(2).prefixesPerPacket(), 500u);
}

TEST(Scenario, ForwardingTableChanges)
{
    // Table I row "Forwarding Table Changes": yes, yes, no, yes.
    EXPECT_TRUE(scenarioByNumber(1).changesForwardingTable());
    EXPECT_TRUE(scenarioByNumber(3).changesForwardingTable());
    EXPECT_FALSE(scenarioByNumber(5).changesForwardingTable());
    EXPECT_FALSE(scenarioByNumber(6).changesForwardingTable());
    EXPECT_TRUE(scenarioByNumber(8).changesForwardingTable());
}

TEST(Scenario, MeasuredPhases)
{
    EXPECT_TRUE(scenarioByNumber(1).measuresPhase1());
    EXPECT_TRUE(scenarioByNumber(2).measuresPhase1());
    for (int n = 3; n <= 8; ++n)
        EXPECT_FALSE(scenarioByNumber(n).measuresPhase1()) << n;
}

TEST(Scenario, SecondSpeakerUsage)
{
    EXPECT_FALSE(scenarioByNumber(1).usesSecondSpeaker());
    EXPECT_FALSE(scenarioByNumber(3).usesSecondSpeaker());
    EXPECT_TRUE(scenarioByNumber(5).usesSecondSpeaker());
    EXPECT_TRUE(scenarioByNumber(8).usesSecondSpeaker());
}

TEST(Scenario, AllScenariosOrdered)
{
    auto all = allScenarios();
    ASSERT_EQ(all.size(), 8u);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(all[size_t(i)].number, i + 1);
}

TEST(Scenario, NamesAndDescriptions)
{
    EXPECT_EQ(scenarioByNumber(4).name(), "Scenario 4");
    for (int n = 1; n <= 8; ++n)
        EXPECT_FALSE(scenarioByNumber(n).description().empty());
}

TEST(Scenario, RejectsOutOfRange)
{
    EXPECT_THROW(scenarioByNumber(0), FatalError);
    EXPECT_THROW(scenarioByNumber(9), FatalError);
    EXPECT_THROW(scenarioByNumber(-3), FatalError);
}
