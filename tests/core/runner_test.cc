/**
 * @file
 * Tests for the three-phase benchmark runner.
 */

#include <gtest/gtest.h>

#include "core/benchmark_runner.hh"
#include "net/logging.hh"

using namespace bgpbench;
using namespace bgpbench::core;

namespace
{

BenchmarkConfig
smallConfig(size_t prefixes = 300)
{
    BenchmarkConfig config;
    config.prefixCount = prefixes;
    config.simTimeLimit = sim::nsFromSec(600.0);
    return config;
}

} // namespace

TEST(BenchmarkRunner, RejectsEmptyWorkload)
{
    BenchmarkConfig config;
    config.prefixCount = 0;
    EXPECT_THROW(
        BenchmarkRunner(router::xeonProfile(), config), FatalError);
}

TEST(BenchmarkRunner, AccessorsRequireARun)
{
    BenchmarkRunner runner(router::xeonProfile(), smallConfig());
    EXPECT_THROW(runner.router(), PanicError);
    EXPECT_THROW(runner.simulator(), PanicError);
}

TEST(BenchmarkRunner, Scenario1MeasuresPhase1)
{
    BenchmarkRunner runner(router::xeonProfile(), smallConfig());
    auto result = runner.run(scenarioByNumber(1));

    EXPECT_FALSE(result.timedOut);
    EXPECT_EQ(result.systemName, "Xeon");
    EXPECT_EQ(result.phase1.transactions, 300u);
    EXPECT_FALSE(result.phase2.has_value());
    EXPECT_FALSE(result.phase3.has_value());
    EXPECT_GT(result.measuredTps, 0.0);
    EXPECT_DOUBLE_EQ(result.measuredTps,
                     result.phase1.transactionsPerSecond());

    // The router ended with the full table installed.
    EXPECT_EQ(runner.router().fib().size(), 300u);
    EXPECT_EQ(result.speakerCounters.announcementsProcessed, 300u);
}

TEST(BenchmarkRunner, Scenario3WithdrawsEverything)
{
    BenchmarkRunner runner(router::xeonProfile(), smallConfig());
    auto result = runner.run(scenarioByNumber(3));

    ASSERT_FALSE(result.timedOut);
    ASSERT_TRUE(result.phase3.has_value());
    EXPECT_FALSE(result.phase2.has_value()); // paper: Phase 2 omitted
    EXPECT_EQ(result.phase3->transactions, 300u);
    EXPECT_EQ(result.speakerCounters.withdrawalsProcessed, 300u);
    EXPECT_EQ(runner.router().fib().size(), 0u);
    EXPECT_EQ(runner.router().speaker().locRib().size(), 0u);
}

TEST(BenchmarkRunner, Scenario5LeavesForwardingTableAlone)
{
    BenchmarkRunner runner(router::xeonProfile(), smallConfig());
    auto result = runner.run(scenarioByNumber(5));

    ASSERT_FALSE(result.timedOut);
    ASSERT_TRUE(result.phase2.has_value());
    ASSERT_TRUE(result.phase3.has_value());

    // Phase 3 processed all announcements but changed nothing:
    // fib changes equal the phase-1 installs only.
    EXPECT_EQ(result.speakerCounters.announcementsProcessed, 600u);
    EXPECT_EQ(result.speakerCounters.fibChanges, 300u);
    EXPECT_EQ(runner.router().controlPlane().fibChangesApplied, 300u);

    // Speaker 1's routes are still the best (shorter path).
    const auto &loc_rib = runner.router().speaker().locRib();
    EXPECT_EQ(loc_rib.size(), 300u);
    size_t from_peer0 = 0;
    loc_rib.forEach([&](const net::Prefix &,
                        const bgp::LocRib::Entry &entry) {
        from_peer0 += entry.best.peer == 0;
    });
    EXPECT_EQ(from_peer0, 300u);
}

TEST(BenchmarkRunner, Scenario7ReplacesEveryBestPath)
{
    BenchmarkRunner runner(router::xeonProfile(), smallConfig());
    auto result = runner.run(scenarioByNumber(7));

    ASSERT_FALSE(result.timedOut);
    // Phase 1 installs + phase 3 replaces: 2N FIB changes.
    EXPECT_EQ(result.speakerCounters.fibChanges, 600u);

    // Every best route now comes from Speaker 2 with next hop
    // 10.0.2.2.
    const auto &loc_rib = runner.router().speaker().locRib();
    size_t from_peer1 = 0;
    loc_rib.forEach([&](const net::Prefix &,
                        const bgp::LocRib::Entry &entry) {
        from_peer1 += entry.best.peer == 1;
    });
    EXPECT_EQ(from_peer1, 300u);

    // Speaker 1 was told about the new (shorter) paths in Phase 3.
    EXPECT_GT(runner.speaker1().counters().announcementsReceived, 0u);
}

TEST(BenchmarkRunner, Phase2DeliversTableToSpeaker2)
{
    BenchmarkRunner runner(router::xeonProfile(), smallConfig());
    auto result = runner.run(scenarioByNumber(6));
    ASSERT_FALSE(result.timedOut);
    ASSERT_TRUE(result.phase2.has_value());
    EXPECT_EQ(result.phase2->transactions, 300u);
    EXPECT_EQ(runner.speaker2().counters().announcementsReceived,
              300u);
}

TEST(BenchmarkRunner, LargePacketsFasterThanSmall)
{
    BenchmarkRunner runner(router::pentium3Profile(), smallConfig());
    auto small = runner.run(scenarioByNumber(1));
    auto large = runner.run(scenarioByNumber(2));
    ASSERT_FALSE(small.timedOut);
    ASSERT_FALSE(large.timedOut);
    EXPECT_GT(large.measuredTps, small.measuredTps * 1.3);
}

TEST(BenchmarkRunner, RunsAreReproducible)
{
    BenchmarkRunner runner(router::xeonProfile(), smallConfig());
    auto a = runner.run(scenarioByNumber(2));
    auto b = runner.run(scenarioByNumber(2));
    EXPECT_DOUBLE_EQ(a.measuredTps, b.measuredTps);
    EXPECT_DOUBLE_EQ(a.phase1.durationSec, b.phase1.durationSec);
}

TEST(BenchmarkRunner, ObservabilityDoesNotPerturbResults)
{
    // Attaching the metric registry and tracer must not change any
    // virtual-time result — same phases, same durations, same
    // transaction counts — for every Table III scenario shape the
    // runner distinguishes (phase1-only, phase2, phase3).
    for (int scenario : {1, 2, 6, 8}) {
        SCOPED_TRACE("scenario " + std::to_string(scenario));
        BenchmarkRunner detached(router::xeonProfile(),
                                 smallConfig());
        auto baseline = detached.run(scenarioByNumber(scenario));

        obs::RunObservability obs;
        BenchmarkConfig config = smallConfig();
        config.obs = &obs;
        BenchmarkRunner traced(router::xeonProfile(), config);
        auto result = traced.run(scenarioByNumber(scenario));

        EXPECT_DOUBLE_EQ(result.measuredTps, baseline.measuredTps);
        EXPECT_DOUBLE_EQ(result.phase1.durationSec,
                         baseline.phase1.durationSec);
        EXPECT_EQ(result.phase1.transactions,
                  baseline.phase1.transactions);
        ASSERT_EQ(result.phase3.has_value(),
                  baseline.phase3.has_value());
        if (baseline.phase3) {
            EXPECT_DOUBLE_EQ(result.phase3->durationSec,
                             baseline.phase3->durationSec);
            EXPECT_EQ(result.phase3->transactions,
                      baseline.phase3->transactions);
        }
        EXPECT_EQ(result.speakerCounters.updatesReceived,
                  baseline.speakerCounters.updatesReceived);

        // The traced run recorded its phases in virtual time.
        EXPECT_FALSE(obs.trace.empty());
        bool saw_phase1 = false;
        for (const obs::TraceEvent &event : obs.trace.events()) {
            if (std::string(event.name) == "phase1")
                saw_phase1 = true;
        }
        EXPECT_TRUE(saw_phase1);
        EXPECT_GT(
            obs.metrics.counterValue("bgp.updates_received"), 0u);
    }
}

TEST(BenchmarkRunner, CrossTrafficIsForwardedDuringRun)
{
    BenchmarkConfig config = smallConfig();
    config.crossTrafficMbps = 100.0;
    BenchmarkRunner runner(router::pentium3Profile(), config);
    auto result = runner.run(scenarioByNumber(2));
    ASSERT_FALSE(result.timedOut);
    EXPECT_GT(result.dataPlane.forwardedPackets, 1000u);
    EXPECT_EQ(result.dataPlane.busDrops, 0u);
}

TEST(BenchmarkRunner, TimeoutReported)
{
    BenchmarkConfig config = smallConfig(2000);
    config.simTimeLimit = sim::nsFromSec(1.0); // far too short
    BenchmarkRunner runner(router::ixp2400Profile(), config);
    auto result = runner.run(scenarioByNumber(1));
    EXPECT_TRUE(result.timedOut);
}
