/**
 * @file
 * Tests for the three-phase benchmark runner.
 */

#include <gtest/gtest.h>

#include "core/benchmark_runner.hh"
#include "net/logging.hh"

using namespace bgpbench;
using namespace bgpbench::core;

namespace
{

BenchmarkConfig
smallConfig(size_t prefixes = 300)
{
    BenchmarkConfig config;
    config.prefixCount = prefixes;
    config.simTimeLimit = sim::nsFromSec(600.0);
    return config;
}

} // namespace

TEST(BenchmarkRunner, RejectsEmptyWorkload)
{
    BenchmarkConfig config;
    config.prefixCount = 0;
    EXPECT_THROW(
        BenchmarkRunner(router::xeonProfile(), config), FatalError);
}

TEST(BenchmarkRunner, AccessorsRequireARun)
{
    BenchmarkRunner runner(router::xeonProfile(), smallConfig());
    EXPECT_THROW(runner.router(), PanicError);
    EXPECT_THROW(runner.simulator(), PanicError);
}

TEST(BenchmarkRunner, Scenario1MeasuresPhase1)
{
    BenchmarkRunner runner(router::xeonProfile(), smallConfig());
    auto result = runner.run(scenarioByNumber(1));

    EXPECT_FALSE(result.timedOut);
    EXPECT_EQ(result.systemName, "Xeon");
    EXPECT_EQ(result.phase1.transactions, 300u);
    EXPECT_FALSE(result.phase2.has_value());
    EXPECT_FALSE(result.phase3.has_value());
    EXPECT_GT(result.measuredTps, 0.0);
    EXPECT_DOUBLE_EQ(result.measuredTps,
                     result.phase1.transactionsPerSecond());

    // The router ended with the full table installed.
    EXPECT_EQ(runner.router().fib().size(), 300u);
    EXPECT_EQ(result.speakerCounters.announcementsProcessed, 300u);
}

TEST(BenchmarkRunner, Scenario3WithdrawsEverything)
{
    BenchmarkRunner runner(router::xeonProfile(), smallConfig());
    auto result = runner.run(scenarioByNumber(3));

    ASSERT_FALSE(result.timedOut);
    ASSERT_TRUE(result.phase3.has_value());
    EXPECT_FALSE(result.phase2.has_value()); // paper: Phase 2 omitted
    EXPECT_EQ(result.phase3->transactions, 300u);
    EXPECT_EQ(result.speakerCounters.withdrawalsProcessed, 300u);
    EXPECT_EQ(runner.router().fib().size(), 0u);
    EXPECT_EQ(runner.router().speaker().locRib().size(), 0u);
}

TEST(BenchmarkRunner, Scenario5LeavesForwardingTableAlone)
{
    BenchmarkRunner runner(router::xeonProfile(), smallConfig());
    auto result = runner.run(scenarioByNumber(5));

    ASSERT_FALSE(result.timedOut);
    ASSERT_TRUE(result.phase2.has_value());
    ASSERT_TRUE(result.phase3.has_value());

    // Phase 3 processed all announcements but changed nothing:
    // fib changes equal the phase-1 installs only.
    EXPECT_EQ(result.speakerCounters.announcementsProcessed, 600u);
    EXPECT_EQ(result.speakerCounters.fibChanges, 300u);
    EXPECT_EQ(runner.router().controlPlane().fibChangesApplied, 300u);

    // Speaker 1's routes are still the best (shorter path).
    const auto &loc_rib = runner.router().speaker().locRib();
    EXPECT_EQ(loc_rib.size(), 300u);
    size_t from_peer0 = 0;
    loc_rib.forEach([&](const net::Prefix &,
                        const bgp::LocRib::Entry &entry) {
        from_peer0 += entry.best.peer == 0;
    });
    EXPECT_EQ(from_peer0, 300u);
}

TEST(BenchmarkRunner, Scenario7ReplacesEveryBestPath)
{
    BenchmarkRunner runner(router::xeonProfile(), smallConfig());
    auto result = runner.run(scenarioByNumber(7));

    ASSERT_FALSE(result.timedOut);
    // Phase 1 installs + phase 3 replaces: 2N FIB changes.
    EXPECT_EQ(result.speakerCounters.fibChanges, 600u);

    // Every best route now comes from Speaker 2 with next hop
    // 10.0.2.2.
    const auto &loc_rib = runner.router().speaker().locRib();
    size_t from_peer1 = 0;
    loc_rib.forEach([&](const net::Prefix &,
                        const bgp::LocRib::Entry &entry) {
        from_peer1 += entry.best.peer == 1;
    });
    EXPECT_EQ(from_peer1, 300u);

    // Speaker 1 was told about the new (shorter) paths in Phase 3.
    EXPECT_GT(runner.speaker1().counters().announcementsReceived, 0u);
}

TEST(BenchmarkRunner, Phase2DeliversTableToSpeaker2)
{
    BenchmarkRunner runner(router::xeonProfile(), smallConfig());
    auto result = runner.run(scenarioByNumber(6));
    ASSERT_FALSE(result.timedOut);
    ASSERT_TRUE(result.phase2.has_value());
    EXPECT_EQ(result.phase2->transactions, 300u);
    EXPECT_EQ(runner.speaker2().counters().announcementsReceived,
              300u);
}

TEST(BenchmarkRunner, LargePacketsFasterThanSmall)
{
    BenchmarkRunner runner(router::pentium3Profile(), smallConfig());
    auto small = runner.run(scenarioByNumber(1));
    auto large = runner.run(scenarioByNumber(2));
    ASSERT_FALSE(small.timedOut);
    ASSERT_FALSE(large.timedOut);
    EXPECT_GT(large.measuredTps, small.measuredTps * 1.3);
}

TEST(BenchmarkRunner, RunsAreReproducible)
{
    BenchmarkRunner runner(router::xeonProfile(), smallConfig());
    auto a = runner.run(scenarioByNumber(2));
    auto b = runner.run(scenarioByNumber(2));
    EXPECT_DOUBLE_EQ(a.measuredTps, b.measuredTps);
    EXPECT_DOUBLE_EQ(a.phase1.durationSec, b.phase1.durationSec);
}

TEST(BenchmarkRunner, CrossTrafficIsForwardedDuringRun)
{
    BenchmarkConfig config = smallConfig();
    config.crossTrafficMbps = 100.0;
    BenchmarkRunner runner(router::pentium3Profile(), config);
    auto result = runner.run(scenarioByNumber(2));
    ASSERT_FALSE(result.timedOut);
    EXPECT_GT(result.dataPlane.forwardedPackets, 1000u);
    EXPECT_EQ(result.dataPlane.busDrops, 0u);
}

TEST(BenchmarkRunner, TimeoutReported)
{
    BenchmarkConfig config = smallConfig(2000);
    config.simTimeLimit = sim::nsFromSec(1.0); // far too short
    BenchmarkRunner runner(router::ixp2400Profile(), config);
    auto result = runner.run(scenarioByNumber(1));
    EXPECT_TRUE(result.timedOut);
}
