/**
 * @file
 * Shape tests: assert that the reproduction preserves the paper's
 * qualitative findings (section V) at reduced workload sizes.
 *
 * These are the contract of the reproduction: orderings, rough
 * factors, and crossovers from Table III and Figure 5 must hold.
 */

#include <gtest/gtest.h>

#include "core/benchmark_runner.hh"
#include "core/paper_data.hh"

using namespace bgpbench;
using namespace bgpbench::core;

namespace
{

double
tpsOf(const router::SystemProfile &profile, int scenario,
      double cross_mbps = 0.0, size_t prefixes = 400)
{
    BenchmarkConfig config;
    config.prefixCount = prefixes;
    config.crossTrafficMbps = cross_mbps;
    config.simTimeLimit = sim::nsFromSec(3600.0);
    BenchmarkRunner runner(profile, config);
    auto result = runner.run(scenarioByNumber(scenario));
    EXPECT_FALSE(result.timedOut)
        << profile.name << " scenario " << scenario;
    return result.measuredTps;
}

} // namespace

TEST(PaperShape, SystemOrderingOnStartupScenario)
{
    // Table III observation: "dual-core ~ 10x uni-core ~ 10x network
    // processor" on most scenarios.
    double xeon = tpsOf(router::xeonProfile(), 1);
    double p3 = tpsOf(router::pentium3Profile(), 1);
    double ixp = tpsOf(router::ixp2400Profile(), 1);

    EXPECT_GT(xeon, 4.0 * p3);
    EXPECT_LT(xeon, 30.0 * p3);
    EXPECT_GT(p3, 4.0 * ixp);
    EXPECT_LT(p3, 30.0 * ixp);
}

TEST(PaperShape, CommercialRouterSmallPacketCeiling)
{
    // Cisco sits at ~10.7 tps on every small-packet scenario, an
    // order of magnitude below even the IXP2400.
    double s1 = tpsOf(router::ciscoProfile(), 1, 0.0, 60);
    double s5 = tpsOf(router::ciscoProfile(), 5, 0.0, 60);
    EXPECT_NEAR(s1, 10.7, 2.5);
    EXPECT_NEAR(s5, 10.7, 2.5);

    double ixp_s1 = tpsOf(router::ixp2400Profile(), 1, 0.0, 200);
    EXPECT_GT(ixp_s1, s1); // "commercial worse than NP on small"
}

TEST(PaperShape, CommercialRouterLargePacketsCompetitive)
{
    // With large packets the Cisco reaches thousands of tps,
    // comparable to the Xeon-class XORP systems (Table III S2).
    double cisco = tpsOf(router::ciscoProfile(), 2, 0.0, 2000);
    EXPECT_GT(cisco, 1500.0);
    EXPECT_LT(cisco, 6000.0);
}

TEST(PaperShape, NoFibChangeScenariosAreFaster)
{
    // Scenarios that do not touch the forwarding table process
    // faster (Table III: S5 >> S1, S6 >> S2).
    double s1 = tpsOf(router::pentium3Profile(), 1);
    double s5 = tpsOf(router::pentium3Profile(), 5);
    double s2 = tpsOf(router::pentium3Profile(), 2);
    double s6 = tpsOf(router::pentium3Profile(), 6);
    EXPECT_GT(s5, 3.0 * s1);
    EXPECT_GT(s6, 3.0 * s2);
}

TEST(PaperShape, LargePacketsFasterExceptReplacementScenarios)
{
    // Packing helps everywhere, but scenarios 7/8 stay slow because
    // per-prefix replacement work dominates (Table III: S7 ~ S8).
    double s1 = tpsOf(router::pentium3Profile(), 1);
    double s2 = tpsOf(router::pentium3Profile(), 2);
    EXPECT_GT(s2, 1.3 * s1);

    double s7 = tpsOf(router::pentium3Profile(), 7);
    double s8 = tpsOf(router::pentium3Profile(), 8);
    EXPECT_LT(s8, 2.0 * s7); // packing gains collapse
    EXPECT_LT(s7, s1);       // replacements slower than installs
}

TEST(PaperShape, ReplacementScenariosAreSlowest)
{
    double s7 = tpsOf(router::xeonProfile(), 7);
    for (int n : {1, 2, 3, 4, 5, 6}) {
        EXPECT_GT(tpsOf(router::xeonProfile(), n), s7)
            << "scenario " << n;
    }
}

TEST(PaperShape, CrossTrafficDegradesSharedDataPlaneSystems)
{
    // Figure 5: the Pentium III loses BGP throughput as cross-traffic
    // approaches its 315 Mbps bus limit.
    double idle = tpsOf(router::pentium3Profile(), 1, 0.0);
    double loaded = tpsOf(router::pentium3Profile(), 1, 300.0);
    EXPECT_LT(loaded, 0.85 * idle);
    EXPECT_GT(loaded, 0.2 * idle); // degraded, not collapsed
}

TEST(PaperShape, NetworkProcessorImmuneToCrossTraffic)
{
    // Figure 5: the IXP2400's packet processors isolate the XScale;
    // full-rate cross-traffic leaves BGP throughput unchanged.
    double idle = tpsOf(router::ixp2400Profile(), 5, 0.0, 200);
    double loaded = tpsOf(router::ixp2400Profile(), 5, 900.0, 200);
    EXPECT_NEAR(loaded, idle, 0.05 * idle);
}

TEST(PaperShape, CommercialLargePacketsCollapseNearPortRate)
{
    // Figure 5 benchmark 8: the Cisco's large-packet rate "drops
    // drastically" as cross-traffic approaches 78 Mbps.
    double idle = tpsOf(router::ciscoProfile(), 8, 0.0, 1000);
    double loaded = tpsOf(router::ciscoProfile(), 8, 70.0, 1000);
    EXPECT_LT(loaded, 0.5 * idle);
}

TEST(PaperShape, CommercialSmallPacketsUnaffectedByCrossTraffic)
{
    // Figure 5 benchmark 7: the ~10 tps small-packet rate barely
    // moves under load (the per-message slow path is not CPU-bound).
    double idle = tpsOf(router::ciscoProfile(), 7, 0.0, 40);
    double loaded = tpsOf(router::ciscoProfile(), 7, 70.0, 40);
    EXPECT_NEAR(loaded, idle, 0.25 * idle);
}

TEST(PaperShape, XeonToleratesCrossTrafficBetterThanPentium)
{
    // On the dual-core system interrupts land on one core while the
    // pipeline spreads over the others; degradation is milder.
    double p3_ratio = tpsOf(router::pentium3Profile(), 5, 300.0) /
                      tpsOf(router::pentium3Profile(), 5, 0.0);
    double xeon_ratio = tpsOf(router::xeonProfile(), 5, 700.0) /
                        tpsOf(router::xeonProfile(), 5, 0.0);
    EXPECT_GT(xeon_ratio, p3_ratio);
}

TEST(PaperShape, AbsoluteLevelsWithinBandOfTable3)
{
    // Spot-check absolute calibration on the uni-core system: the
    // measured values stay within 2x of the paper's Table III.
    struct Case
    {
        int scenario;
        double paper;
    };
    for (const auto &c :
         {Case{1, 185.2}, Case{5, 1111.1}, Case{6, 3636.4}}) {
        double measured =
            tpsOf(router::pentium3Profile(), c.scenario);
        EXPECT_GT(measured, c.paper / 2.0) << c.scenario;
        EXPECT_LT(measured, c.paper * 2.0) << c.scenario;
    }
}
