/**
 * @file
 * Parameterised invariants over all eight benchmark scenarios: for
 * every scenario the run must complete and leave the router in the
 * exact protocol state Table I implies.
 */

#include <gtest/gtest.h>

#include "core/benchmark_runner.hh"

using namespace bgpbench;
using namespace bgpbench::core;

namespace
{
constexpr size_t kPrefixes = 250;
} // namespace

class ScenarioInvariants : public ::testing::TestWithParam<int>
{
  protected:
    BenchmarkResult
    run()
    {
        BenchmarkConfig config;
        config.prefixCount = kPrefixes;
        config.simTimeLimit = sim::nsFromSec(600.0);
        runner_ = std::make_unique<BenchmarkRunner>(
            router::xeonProfile(), config);
        return runner_->run(scenarioByNumber(GetParam()));
    }

    std::unique_ptr<BenchmarkRunner> runner_;
};

TEST_P(ScenarioInvariants, CompletesWithPositiveRate)
{
    auto result = run();
    ASSERT_FALSE(result.timedOut);
    EXPECT_GT(result.measuredTps, 0.0);
    EXPECT_GT(result.phase1.durationSec, 0.0);
}

TEST_P(ScenarioInvariants, PhasesMatchTableI)
{
    auto scenario = scenarioByNumber(GetParam());
    auto result = run();
    ASSERT_FALSE(result.timedOut);

    EXPECT_EQ(result.phase2.has_value(),
              scenario.usesSecondSpeaker());
    EXPECT_EQ(result.phase3.has_value(),
              !scenario.measuresPhase1());
    if (scenario.measuresPhase1()) {
        EXPECT_DOUBLE_EQ(result.measuredTps,
                         result.phase1.transactionsPerSecond());
    } else {
        EXPECT_DOUBLE_EQ(result.measuredTps,
                         result.phase3->transactionsPerSecond());
    }
}

TEST_P(ScenarioInvariants, TransactionCountsExact)
{
    auto scenario = scenarioByNumber(GetParam());
    auto result = run();
    ASSERT_FALSE(result.timedOut);

    const auto &counters = result.speakerCounters;
    switch (scenario.operation) {
      case BgpOperation::StartupAnnounce:
        EXPECT_EQ(counters.announcementsProcessed, kPrefixes);
        EXPECT_EQ(counters.withdrawalsProcessed, 0u);
        break;
      case BgpOperation::EndingWithdraw:
        EXPECT_EQ(counters.announcementsProcessed, kPrefixes);
        EXPECT_EQ(counters.withdrawalsProcessed, kPrefixes);
        break;
      case BgpOperation::IncrementalNoChange:
      case BgpOperation::IncrementalChange:
        EXPECT_EQ(counters.announcementsProcessed, 2 * kPrefixes);
        EXPECT_EQ(counters.withdrawalsProcessed, 0u);
        break;
    }
}

TEST_P(ScenarioInvariants, FinalTablesMatchTableI)
{
    auto scenario = scenarioByNumber(GetParam());
    auto result = run();
    ASSERT_FALSE(result.timedOut);

    auto &router = runner_->router();
    size_t expected =
        scenario.operation == BgpOperation::EndingWithdraw
            ? 0
            : kPrefixes;
    EXPECT_EQ(router.speaker().locRib().size(), expected);
    EXPECT_EQ(router.fib().size(), expected);

    // FIB write counts per Table I's "Forwarding Table Changes" row.
    size_t expected_writes = 0;
    switch (scenario.operation) {
      case BgpOperation::StartupAnnounce:
        expected_writes = kPrefixes; // installs
        break;
      case BgpOperation::EndingWithdraw:
        expected_writes = 2 * kPrefixes; // installs + removals
        break;
      case BgpOperation::IncrementalNoChange:
        expected_writes = kPrefixes; // phase-1 installs only
        break;
      case BgpOperation::IncrementalChange:
        expected_writes = 2 * kPrefixes; // installs + replacements
        break;
    }
    EXPECT_EQ(router.controlPlane().fibChangesApplied,
              expected_writes);
}

TEST_P(ScenarioInvariants, ControlPlaneFullyDrained)
{
    auto result = run();
    ASSERT_FALSE(result.timedOut);
    EXPECT_TRUE(runner_->router().controlDrained());
    // No session died along the way.
    EXPECT_EQ(result.speakerCounters.notificationsSent, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllScenarios, ScenarioInvariants,
                         ::testing::Range(1, 9),
                         [](const auto &info) {
                             return "Scenario" +
                                    std::to_string(info.param);
                         });
