/**
 * @file
 * RuntimeConfig tests: the env < CLI precedence ladder, the exact
 * legacy parsing semantics of each BGPBENCH_* variable, provenance
 * reporting, and apply() steering the interner and wire pool.
 */

#include <cstdlib>
#include <sstream>

#include <gtest/gtest.h>

#include "bgp/attr_intern.hh"
#include "core/runtime_config.hh"
#include "net/wire_segment.hh"

using namespace bgpbench;

namespace
{

/** Scoped setenv/unsetenv so tests cannot leak into each other. */
class EnvVar
{
  public:
    EnvVar(const char *name, const char *value) : name_(name)
    {
        ::setenv(name, value, 1);
    }

    ~EnvVar() { ::unsetenv(name_); }

  private:
    const char *name_;
};

} // namespace

TEST(RuntimeConfig, DefaultsIgnoreEnvironment)
{
    EnvVar no_intern("BGPBENCH_NO_INTERN", "1");
    core::RuntimeConfig config;
    EXPECT_TRUE(config.internEnabled());
    EXPECT_TRUE(config.segmentSharing());
    EXPECT_FALSE(config.sweep());
    EXPECT_EQ(config.jobs(), 1u);
    EXPECT_EQ(config.internOrigin(), core::ConfigOrigin::Default);
}

TEST(RuntimeConfig, ReadsEnvironmentWithLegacySemantics)
{
    // NO_INTERN and SWEEP require exactly "1"; NO_SEGMENT_SHARING
    // accepts any non-empty value not starting with '0'; JOBS parses
    // as an unsigned integer.
    {
        EnvVar v("BGPBENCH_NO_INTERN", "1");
        auto config = core::RuntimeConfig::fromEnvironment();
        EXPECT_FALSE(config.internEnabled());
        EXPECT_EQ(config.internOrigin(),
                  core::ConfigOrigin::Environment);
    }
    {
        EnvVar v("BGPBENCH_NO_INTERN", "yes");
        auto config = core::RuntimeConfig::fromEnvironment();
        EXPECT_TRUE(config.internEnabled());
        EXPECT_EQ(config.internOrigin(), core::ConfigOrigin::Default);
    }
    {
        EnvVar v("BGPBENCH_NO_SEGMENT_SHARING", "true");
        auto config = core::RuntimeConfig::fromEnvironment();
        EXPECT_FALSE(config.segmentSharing());
    }
    {
        EnvVar v("BGPBENCH_NO_SEGMENT_SHARING", "0");
        auto config = core::RuntimeConfig::fromEnvironment();
        EXPECT_TRUE(config.segmentSharing());
    }
    {
        EnvVar v("BGPBENCH_SWEEP", "1");
        auto config = core::RuntimeConfig::fromEnvironment();
        EXPECT_TRUE(config.sweep());
        EXPECT_EQ(config.sweepOrigin(),
                  core::ConfigOrigin::Environment);
    }
    {
        EnvVar v("BGPBENCH_JOBS", "8");
        auto config = core::RuntimeConfig::fromEnvironment();
        EXPECT_EQ(config.jobs(), 8u);
        EXPECT_EQ(config.jobsOrigin(),
                  core::ConfigOrigin::Environment);
    }
}

TEST(RuntimeConfig, CommandLineBeatsEnvironment)
{
    EnvVar jobs("BGPBENCH_JOBS", "2");
    EnvVar no_intern("BGPBENCH_NO_INTERN", "1");
    auto config = core::RuntimeConfig::fromEnvironment();
    config.overrideJobs(4);
    config.overrideIntern(true);
    EXPECT_EQ(config.jobs(), 4u);
    EXPECT_EQ(config.jobsOrigin(), core::ConfigOrigin::CommandLine);
    EXPECT_TRUE(config.internEnabled());
    EXPECT_EQ(config.internOrigin(),
              core::ConfigOrigin::CommandLine);
    // Untouched settings keep their provenance.
    EXPECT_EQ(config.sweepOrigin(), core::ConfigOrigin::Default);
}

TEST(RuntimeConfig, AdaptiveSyncKnob)
{
    // Default on; BGPBENCH_NO_ADAPTIVE_SYNC=1 (exactly "1") turns it
    // off; --no-adaptive-sync beats both.
    {
        core::RuntimeConfig config;
        EXPECT_TRUE(config.adaptiveSync());
        EXPECT_EQ(config.adaptiveSyncOrigin(),
                  core::ConfigOrigin::Default);
    }
    {
        EnvVar v("BGPBENCH_NO_ADAPTIVE_SYNC", "1");
        auto config = core::RuntimeConfig::fromEnvironment();
        EXPECT_FALSE(config.adaptiveSync());
        EXPECT_EQ(config.adaptiveSyncOrigin(),
                  core::ConfigOrigin::Environment);
    }
    {
        EnvVar v("BGPBENCH_NO_ADAPTIVE_SYNC", "yes");
        auto config = core::RuntimeConfig::fromEnvironment();
        EXPECT_TRUE(config.adaptiveSync());
        EXPECT_EQ(config.adaptiveSyncOrigin(),
                  core::ConfigOrigin::Default);
    }
    {
        EnvVar v("BGPBENCH_NO_ADAPTIVE_SYNC", "1");
        auto config = core::RuntimeConfig::fromEnvironment();
        config.overrideAdaptiveSync(true);
        EXPECT_TRUE(config.adaptiveSync());
        EXPECT_EQ(config.adaptiveSyncOrigin(),
                  core::ConfigOrigin::CommandLine);
    }
}

TEST(RuntimeConfig, DumpShowsAdaptiveSync)
{
    core::RuntimeConfig config;
    config.overrideAdaptiveSync(false);
    std::ostringstream os;
    config.dump(os);
    std::string out = os.str();
    EXPECT_NE(out.find("adaptive sync"), std::string::npos);
    EXPECT_NE(out.find("off"), std::string::npos);
}

TEST(RuntimeConfig, ServeKnobDefaults)
{
    core::RuntimeConfig config;
    EXPECT_EQ(config.serveReaders(), 4u);
    EXPECT_EQ(config.snapshotEvery(), 0u); // 0 = per flush
    EXPECT_EQ(config.queryMix(), "88:10:1.5:0.5");
    EXPECT_EQ(config.serveReadersOrigin(), core::ConfigOrigin::Default);
    EXPECT_EQ(config.snapshotEveryOrigin(),
              core::ConfigOrigin::Default);
    EXPECT_EQ(config.queryMixOrigin(), core::ConfigOrigin::Default);
}

TEST(RuntimeConfig, ServeKnobsFromEnvironment)
{
    {
        EnvVar readers("BGPBENCH_SERVE_READERS", "8");
        EnvVar every("BGPBENCH_SNAPSHOT_EVERY", "16");
        EnvVar mix("BGPBENCH_QUERY_MIX", "50:30:15:5");
        auto config = core::RuntimeConfig::fromEnvironment();
        EXPECT_EQ(config.serveReaders(), 8u);
        EXPECT_EQ(config.serveReadersOrigin(),
                  core::ConfigOrigin::Environment);
        EXPECT_EQ(config.snapshotEvery(), 16u);
        EXPECT_EQ(config.snapshotEveryOrigin(),
                  core::ConfigOrigin::Environment);
        EXPECT_EQ(config.queryMix(), "50:30:15:5");
        EXPECT_EQ(config.queryMixOrigin(),
                  core::ConfigOrigin::Environment);
    }
    {
        // Zero readers and a malformed mix are ignored, not adopted.
        EnvVar readers("BGPBENCH_SERVE_READERS", "0");
        EnvVar mix("BGPBENCH_QUERY_MIX", "not-a-mix");
        auto config = core::RuntimeConfig::fromEnvironment();
        EXPECT_EQ(config.serveReaders(), 4u);
        EXPECT_EQ(config.serveReadersOrigin(),
                  core::ConfigOrigin::Default);
        EXPECT_EQ(config.queryMix(), "88:10:1.5:0.5");
        EXPECT_EQ(config.queryMixOrigin(), core::ConfigOrigin::Default);
    }
}

TEST(RuntimeConfig, ServeKnobCommandLineBeatsEnvironment)
{
    EnvVar readers("BGPBENCH_SERVE_READERS", "8");
    EnvVar every("BGPBENCH_SNAPSHOT_EVERY", "16");
    auto config = core::RuntimeConfig::fromEnvironment();
    config.overrideServeReaders(2);
    config.overrideSnapshotEvery(4);
    config.overrideQueryMix("1:1:1:1");
    EXPECT_EQ(config.serveReaders(), 2u);
    EXPECT_EQ(config.serveReadersOrigin(),
              core::ConfigOrigin::CommandLine);
    EXPECT_EQ(config.snapshotEvery(), 4u);
    EXPECT_EQ(config.snapshotEveryOrigin(),
              core::ConfigOrigin::CommandLine);
    EXPECT_EQ(config.queryMix(), "1:1:1:1");
    EXPECT_EQ(config.queryMixOrigin(),
              core::ConfigOrigin::CommandLine);
}

TEST(RuntimeConfig, DumpShowsServeKnobs)
{
    core::RuntimeConfig config;
    std::ostringstream os;
    config.dump(os);
    std::string out = os.str();
    EXPECT_NE(out.find("serve readers"), std::string::npos);
    EXPECT_NE(out.find("snapshot every"), std::string::npos);
    EXPECT_NE(out.find("flush"), std::string::npos); // 0 renders flush
    EXPECT_NE(out.find("query mix"), std::string::npos);
    EXPECT_NE(out.find("88:10:1.5:0.5"), std::string::npos);
}

TEST(RuntimeConfig, OriginNames)
{
    EXPECT_STREQ(core::configOriginName(core::ConfigOrigin::Default),
                 "default");
    EXPECT_STREQ(
        core::configOriginName(core::ConfigOrigin::Environment),
        "environment");
    EXPECT_STREQ(
        core::configOriginName(core::ConfigOrigin::CommandLine),
        "command line");
}

TEST(RuntimeConfig, DumpShowsValueAndSource)
{
    core::RuntimeConfig config;
    config.overrideJobs(0);
    std::ostringstream os;
    config.dump(os);
    std::string out = os.str();
    EXPECT_NE(out.find("interning"), std::string::npos);
    EXPECT_NE(out.find("segment sharing"), std::string::npos);
    EXPECT_NE(out.find("sweep"), std::string::npos);
    EXPECT_NE(out.find("auto"), std::string::npos); // jobs 0
    EXPECT_NE(out.find("command line"), std::string::npos);
    EXPECT_NE(out.find("default"), std::string::npos);
}

TEST(RuntimeConfig, ApplySteersInternerAndWirePool)
{
    bool intern_before = bgp::internDefaultEnabled();
    bool sharing_before = net::segmentSharingEnabled();

    core::RuntimeConfig config;
    config.overrideIntern(false);
    config.overrideSegmentSharing(false);
    config.apply();
    EXPECT_FALSE(bgp::internDefaultEnabled());
    EXPECT_FALSE(bgp::AttributeInterner::global().enabled());
    EXPECT_FALSE(net::segmentSharingEnabled());

    core::RuntimeConfig restore;
    restore.overrideIntern(intern_before);
    restore.overrideSegmentSharing(sharing_before);
    restore.apply();
    EXPECT_EQ(bgp::internDefaultEnabled(), intern_before);
    EXPECT_EQ(net::segmentSharingEnabled(), sharing_before);
}

TEST(RuntimeConfig, MaxPathsKnob)
{
    {
        core::RuntimeConfig config;
        EXPECT_EQ(config.maxPaths(), 1u);
        EXPECT_EQ(config.maxPathsOrigin(),
                  core::ConfigOrigin::Default);
    }
    {
        EnvVar v("BGPBENCH_MAX_PATHS", "4");
        auto config = core::RuntimeConfig::fromEnvironment();
        EXPECT_EQ(config.maxPaths(), 4u);
        EXPECT_EQ(config.maxPathsOrigin(),
                  core::ConfigOrigin::Environment);
    }
    {
        // Zero and garbage are ignored, not adopted.
        EnvVar v("BGPBENCH_MAX_PATHS", "0");
        auto config = core::RuntimeConfig::fromEnvironment();
        EXPECT_EQ(config.maxPaths(), 1u);
        EXPECT_EQ(config.maxPathsOrigin(),
                  core::ConfigOrigin::Default);
    }
    {
        EnvVar v("BGPBENCH_MAX_PATHS", "2");
        auto config = core::RuntimeConfig::fromEnvironment();
        config.overrideMaxPaths(8);
        EXPECT_EQ(config.maxPaths(), 8u);
        EXPECT_EQ(config.maxPathsOrigin(),
                  core::ConfigOrigin::CommandLine);
    }
}

TEST(RuntimeConfig, DumpShowsMaxPaths)
{
    core::RuntimeConfig config;
    config.overrideMaxPaths(4);
    std::ostringstream os;
    config.dump(os);
    std::string out = os.str();
    EXPECT_NE(out.find("max paths"), std::string::npos);
    EXPECT_NE(out.find("4"), std::string::npos);
}

TEST(RuntimeConfig, ChurnKnobs)
{
    {
        core::RuntimeConfig config;
        EXPECT_EQ(config.mraiMs(), 0u); // paper default: no batching
        EXPECT_FALSE(config.damping());
        EXPECT_EQ(config.mraiMsOrigin(), core::ConfigOrigin::Default);
        EXPECT_EQ(config.dampingOrigin(),
                  core::ConfigOrigin::Default);
    }
    {
        EnvVar mrai("BGPBENCH_MRAI_MS", "1000");
        EnvVar damping("BGPBENCH_DAMPING", "1");
        auto config = core::RuntimeConfig::fromEnvironment();
        EXPECT_EQ(config.mraiMs(), 1000u);
        EXPECT_TRUE(config.damping());
        EXPECT_EQ(config.mraiMsOrigin(),
                  core::ConfigOrigin::Environment);
        EXPECT_EQ(config.dampingOrigin(),
                  core::ConfigOrigin::Environment);
    }
    {
        // BGPBENCH_DAMPING requires exactly "1" (legacy flag style).
        EnvVar damping("BGPBENCH_DAMPING", "yes");
        auto config = core::RuntimeConfig::fromEnvironment();
        EXPECT_FALSE(config.damping());
        EXPECT_EQ(config.dampingOrigin(),
                  core::ConfigOrigin::Default);
    }
    {
        EnvVar mrai("BGPBENCH_MRAI_MS", "1000");
        auto config = core::RuntimeConfig::fromEnvironment();
        config.overrideMraiMs(50);
        config.overrideDamping(true);
        EXPECT_EQ(config.mraiMs(), 50u);
        EXPECT_TRUE(config.damping());
        EXPECT_EQ(config.mraiMsOrigin(),
                  core::ConfigOrigin::CommandLine);
        EXPECT_EQ(config.dampingOrigin(),
                  core::ConfigOrigin::CommandLine);
    }
}

TEST(RuntimeConfig, DumpShowsChurnKnobs)
{
    core::RuntimeConfig config;
    std::ostringstream os;
    config.dump(os);
    std::string out = os.str();
    EXPECT_NE(out.find("mrai ms"), std::string::npos);
    EXPECT_NE(out.find("damping"), std::string::npos);
    // mrai 0 renders as "off" (the paper default).
    config.overrideMraiMs(250);
    std::ostringstream os2;
    config.dump(os2);
    EXPECT_NE(os2.str().find("250"), std::string::npos);
}
