/**
 * @file
 * Tests for the topology partitioner feeding the parallel engine:
 * full coverage, fair balance, cut statistics, determinism, and the
 * imbalance warning.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "net/logging.hh"
#include "stats/report.hh"
#include "topo/partition.hh"
#include "topo/topology.hh"

using namespace bgpbench;
using topo::Partition;
using topo::partitionTopology;
using topo::Topology;

namespace
{

/** Every node assigned exactly once, counts consistent. */
void
expectCovers(const Partition &part, const Topology &topo)
{
    ASSERT_EQ(part.shardOf.size(), topo.nodeCount());
    ASSERT_EQ(part.shardNodes.size(), part.shardCount);
    std::vector<size_t> counted(part.shardCount, 0);
    for (uint32_t shard : part.shardOf) {
        ASSERT_LT(shard, part.shardCount);
        ++counted[shard];
    }
    for (size_t s = 0; s < part.shardCount; ++s)
        EXPECT_EQ(counted[s], part.shardNodes[s]);
}

} // namespace

TEST(Partition, CoversEveryShapeAndCount)
{
    std::vector<Topology> shapes;
    shapes.push_back(Topology::line(9));
    shapes.push_back(Topology::ring(12));
    shapes.push_back(Topology::star(7));
    shapes.push_back(Topology::fullMesh(8));
    shapes.push_back(Topology::barabasiAlbert(20, 2, 3));
    for (const Topology &topo : shapes) {
        for (size_t shards : {1, 2, 3, 4, 8}) {
            Partition part = partitionTopology(topo, shards);
            expectCovers(part, topo);
        }
    }
}

TEST(Partition, FairQuotasNeverDifferByMoreThanOne)
{
    Partition part = partitionTopology(Topology::ring(10), 4);
    ASSERT_EQ(part.shardCount, 4u);
    std::vector<size_t> sizes = part.shardNodes;
    std::sort(sizes.begin(), sizes.end());
    EXPECT_EQ(sizes, (std::vector<size_t>{2, 2, 3, 3}));
    // Skew measured against the ideal 10/4 = 2.5: 3/2.5 - 1 = 0.2.
    EXPECT_NEAR(part.nodeSkew, 0.2, 1e-9);
}

TEST(Partition, SingleShardCutsNothing)
{
    Partition part = partitionTopology(Topology::fullMesh(6), 1);
    EXPECT_EQ(part.shardCount, 1u);
    EXPECT_EQ(part.cutLinks, 0u);
    EXPECT_EQ(part.edgeCutRatio, 0.0);
    EXPECT_EQ(part.nodeSkew, 0.0);
    EXPECT_EQ(part.minCutLatencyNs, sim::simTimeNever);
}

TEST(Partition, ClampsShardCountToNodes)
{
    Partition part = partitionTopology(Topology::line(5), 64);
    EXPECT_EQ(part.shardCount, 5u);
    for (size_t s = 0; s < 5; ++s)
        EXPECT_EQ(part.shardNodes[s], 1u);
}

TEST(Partition, ZeroShardsIsFatal)
{
    EXPECT_THROW(partitionTopology(Topology::line(4), 0), FatalError);
}

TEST(Partition, LineRecoversMinimumCut)
{
    Partition part = partitionTopology(Topology::line(8), 2);
    EXPECT_EQ(part.cutLinks, 1u);
    EXPECT_NEAR(part.edgeCutRatio, 1.0 / 7.0, 1e-9);
    // BFS growth keeps each half contiguous.
    for (size_t node = 0; node < 4; ++node)
        EXPECT_EQ(part.shardOf[node], part.shardOf[0]);
    for (size_t node = 4; node < 8; ++node)
        EXPECT_EQ(part.shardOf[node], part.shardOf[4]);
}

TEST(Partition, RingCutsExactlyTwoLinks)
{
    Partition part = partitionTopology(Topology::ring(12), 2);
    EXPECT_EQ(part.cutLinks, 2u);
}

TEST(Partition, DeterministicForEqualInputs)
{
    Topology a = Topology::barabasiAlbert(30, 2, 9);
    Topology b = Topology::barabasiAlbert(30, 2, 9);
    Partition pa = partitionTopology(a, 4);
    Partition pb = partitionTopology(b, 4);
    EXPECT_EQ(pa.shardOf, pb.shardOf);
    EXPECT_EQ(pa.cutLinks, pb.cutLinks);
}

TEST(Partition, MinCutLatencyIsSmallestCrossShardLatency)
{
    // A 4-node line with distinct latencies; split in two, the only
    // cut link is the middle one.
    Topology topo;
    for (size_t i = 0; i < 4; ++i)
        topo.addNode(Topology::defaultNode(i, {}));
    topo.addLink(0, 1, sim::nsFromMs(1), 100.0);
    topo.addLink(1, 2, sim::nsFromMs(7), 100.0);
    topo.addLink(2, 3, sim::nsFromMs(1), 100.0);

    Partition part = partitionTopology(topo, 2);
    ASSERT_EQ(part.cutLinks, 1u);
    EXPECT_EQ(part.minCutLatencyNs, sim::nsFromMs(7));
}

TEST(Partition, CrossShardPredicateMatchesAssignment)
{
    Topology topo = Topology::ring(10);
    Partition part = partitionTopology(topo, 3);
    size_t cut = 0;
    for (size_t l = 0; l < topo.linkCount(); ++l) {
        if (part.crossShard(topo.link(l)))
            ++cut;
    }
    EXPECT_EQ(cut, part.cutLinks);
}

TEST(Partition, PerShardMinCutLatencyCoversEachSide)
{
    // Line 0-1-2-3 split in two: the middle link is the only cut,
    // so both shards see its latency; a three-way split of a longer
    // line gives the middle shard the smaller of its two cuts.
    Topology topo;
    for (size_t i = 0; i < 6; ++i)
        topo.addNode(Topology::defaultNode(i, {}));
    topo.addLink(0, 1, sim::nsFromMs(1), 100.0);
    topo.addLink(1, 2, sim::nsFromMs(9), 100.0);
    topo.addLink(2, 3, sim::nsFromMs(1), 100.0);
    topo.addLink(3, 4, sim::nsFromMs(5), 100.0);
    topo.addLink(4, 5, sim::nsFromMs(1), 100.0);

    Partition part = topo::partitionTopologyWithStrategy(
        topo, 3, topo::PartitionStrategy::AdjacencyOrder);
    ASSERT_EQ(part.shardCount, 3u);
    ASSERT_EQ(part.shardMinCutLatencyNs.size(), 3u);
    // Shards are contiguous: {0,1}, {2,3}, {4,5}; cuts are 1-2 (9ms)
    // and 3-4 (5ms).
    EXPECT_EQ(part.shardMinCutLatencyNs[part.shardOf[0]],
              sim::nsFromMs(9));
    EXPECT_EQ(part.shardMinCutLatencyNs[part.shardOf[2]],
              sim::nsFromMs(5));
    EXPECT_EQ(part.shardMinCutLatencyNs[part.shardOf[5]],
              sim::nsFromMs(5));
    // A single shard touches no cut at all.
    Partition solo = partitionTopology(topo, 1);
    ASSERT_EQ(solo.shardMinCutLatencyNs.size(), 1u);
    EXPECT_EQ(solo.shardMinCutLatencyNs[0], sim::simTimeNever);
}

TEST(Partition, LatencyAffinityKeepsFastLinksInternal)
{
    // Ring of 4 with alternating latencies: 0-1 and 2-3 are the slow
    // (10 ms) links, 1-2 and 3-0 the fast (1 ms) ones. Adjacency
    // order grows shard 0 as {0, 1}, cutting both fast links; the
    // latency-affine greedy grows {0, 3} along the fast link,
    // cutting the two slow ones instead — a 10x lookahead seed.
    Topology topo;
    for (size_t i = 0; i < 4; ++i)
        topo.addNode(Topology::defaultNode(i, {}));
    topo.addLink(0, 1, sim::nsFromMs(10), 100.0);
    topo.addLink(1, 2, sim::nsFromMs(1), 100.0);
    topo.addLink(2, 3, sim::nsFromMs(10), 100.0);
    topo.addLink(3, 0, sim::nsFromMs(1), 100.0);

    Partition adjacency = topo::partitionTopologyWithStrategy(
        topo, 2, topo::PartitionStrategy::AdjacencyOrder);
    EXPECT_EQ(adjacency.minCutLatencyNs, sim::nsFromMs(1));

    Partition affine = topo::partitionTopologyWithStrategy(
        topo, 2, topo::PartitionStrategy::LatencyAffinity);
    EXPECT_EQ(affine.minCutLatencyNs, sim::nsFromMs(10));
    EXPECT_EQ(affine.shardOf[0], affine.shardOf[3]);
    EXPECT_EQ(affine.shardOf[1], affine.shardOf[2]);

    // The portfolio must pick the strictly better cut.
    Partition chosen = partitionTopology(topo, 2);
    EXPECT_EQ(chosen.minCutLatencyNs, sim::nsFromMs(10));
}

TEST(Partition, PortfolioNeverLowersMinCutLatency)
{
    // The regression bar of the portfolio: on every shape — uniform
    // and heterogeneous latencies alike — the chosen cut's minimum
    // latency is at least the plain greedy's.
    std::vector<Topology> shapes;
    shapes.push_back(Topology::line(9));
    shapes.push_back(Topology::ring(12));
    shapes.push_back(Topology::barabasiAlbert(24, 2, 42));
    // Heterogeneous variant: a BA graph re-built with latencies
    // spread by link index.
    Topology mixed;
    Topology ba = Topology::barabasiAlbert(24, 2, 7);
    for (size_t i = 0; i < ba.nodeCount(); ++i)
        mixed.addNode(Topology::defaultNode(i, {}));
    for (size_t l = 0; l < ba.linkCount(); ++l) {
        const topo::Link &link = ba.link(l);
        mixed.addLink(link.a.node, link.b.node,
                      sim::nsFromMs(1 + (l * 7) % 13), 100.0);
    }
    shapes.push_back(std::move(mixed));

    for (size_t shape = 0; shape < shapes.size(); ++shape) {
        for (size_t shards : {2, 3, 4}) {
            SCOPED_TRACE("shape=" + std::to_string(shape) +
                         " shards=" + std::to_string(shards));
            Partition greedy = topo::partitionTopologyWithStrategy(
                shapes[shape], shards,
                topo::PartitionStrategy::AdjacencyOrder);
            Partition chosen =
                partitionTopology(shapes[shape], shards);
            EXPECT_GE(chosen.minCutLatencyNs,
                      greedy.minCutLatencyNs);
            expectCovers(chosen, shapes[shape]);
        }
    }
}

TEST(Partition, UniformLatencyTieKeepsAdjacencyOrder)
{
    // With uniform latencies every cut has the same min latency;
    // the tie must resolve to the original greedy (possibly via the
    // cut-links tie-break picking an equal-or-better cut), so
    // long-standing shapes keep their exact layouts.
    Topology topo = Topology::line(8);
    Partition greedy = topo::partitionTopologyWithStrategy(
        topo, 2, topo::PartitionStrategy::AdjacencyOrder);
    Partition chosen = partitionTopology(topo, 2);
    EXPECT_EQ(chosen.shardOf, greedy.shardOf);
    EXPECT_EQ(chosen.cutLinks, greedy.cutLinks);
}

TEST(Partition, ImbalanceWarningNamesTheSkew)
{
    std::ostringstream os;
    stats::printImbalanceWarning(os, 4, 0.5);
    EXPECT_NE(os.str().find("warning"), std::string::npos);
    EXPECT_NE(os.str().find("50.0%"), std::string::npos);
    EXPECT_NE(os.str().find("4 shards"), std::string::npos);
}
