/**
 * @file
 * Determinism suite for maximum-paths ECMP: on a Clos fabric — the
 * topology whose equal-length tor/agg/spine path sets are exactly what
 * maximum-paths exists for — runs at jobs = 1, 2, 4, 8 and
 * maximum-paths 1 and 4 must produce byte-identical reports, including
 * runs where faults land while convergence traffic is in flight.
 * Also pins the two directional invariants: maximum-paths 1 behaves
 * exactly like the pre-ECMP engine, and maximum-paths > 1 actually
 * forms multipath groups on the fabric.
 */

#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bgp/rib.hh"
#include "topo/scenarios.hh"
#include "topo/topology.hh"
#include "topo/topology_sim.hh"

using namespace bgpbench;

namespace
{

const std::vector<size_t> kJobCounts = {1, 2, 4, 8};

/** A 10-node fabric: 2 spines, 2 pods x (2 aggs + 2 tors). */
topo::Topology
smallClos()
{
    return topo::Topology::clos({});
}

/**
 * The fabric's ToR node indices (spines first, then per pod aggs
 * before tors). Prefixes originate at ToRs, as in a real datacenter —
 * a spine- or agg-originated prefix can never reach the other members
 * of its shared AS (their own AS in the path loop-rejects it), so
 * only ToR routes are network-wide reachable.
 */
const std::vector<size_t> kTors = {4, 5, 8, 9};

std::string
allRenderings(const topo::ConvergenceReport &report)
{
    std::ostringstream os;
    os << report.toJson() << '\n';
    report.printCsv(os, true);
    report.printText(os);
    return os.str();
}

/**
 * Converge the fabric with every ToR originating one prefix and a
 * link flap plus a session reset landing mid-convergence, and render
 * the full report.
 */
std::string
runClos(size_t jobs, size_t max_paths, bool faults)
{
    topo::TopologySimConfig config;
    config.jobs = jobs;
    config.maxPaths = max_paths;
    topo::TopologySim sim(smallClos(), config);
    for (size_t tor : kTors)
        sim.originate(tor, topo::scenarioPrefix(tor, 0), 0);
    if (faults) {
        // Link 0 is a tor->agg uplink; losing and regaining it
        // re-forms the ECMP groups behind it mid-window.
        sim.scheduleLinkDown(0, sim::nsFromUs(300));
        sim.scheduleSessionReset(3, sim::nsFromUs(450));
        sim.scheduleLinkUp(0, sim::nsFromMs(2));
    }
    bool converged = sim.runToConvergence(sim::nsFromSec(600.0));
    EXPECT_TRUE(converged);
    topo::ConvergenceReport report = sim.report("ecmp", "clos");
    report.converged = converged && sim.locRibsConsistent();
    return allRenderings(report);
}

} // namespace

TEST(EcmpDeterminism, CleanConvergenceMatrixIsByteIdentical)
{
    for (size_t max_paths : {size_t(1), size_t(4)}) {
        std::string baseline = runClos(1, max_paths, false);
        EXPECT_FALSE(baseline.empty());
        for (size_t jobs : kJobCounts) {
            SCOPED_TRACE("jobs=" + std::to_string(jobs) +
                         " max-paths=" + std::to_string(max_paths));
            EXPECT_EQ(runClos(jobs, max_paths, false), baseline);
        }
    }
}

TEST(EcmpDeterminism, MidWindowFaultMatrixIsByteIdentical)
{
    for (size_t max_paths : {size_t(1), size_t(4)}) {
        std::string baseline = runClos(1, max_paths, true);
        EXPECT_FALSE(baseline.empty());
        for (size_t jobs : kJobCounts) {
            SCOPED_TRACE("jobs=" + std::to_string(jobs) +
                         " max-paths=" + std::to_string(max_paths));
            EXPECT_EQ(runClos(jobs, max_paths, true), baseline);
        }
    }
}

TEST(EcmpDeterminism, MaxPathsOneMatchesDefaultEngine)
{
    // maximum-paths 1 must be indistinguishable from a config that
    // never mentions the knob: the legacy single-path code runs.
    topo::TopologySimConfig defaults;
    topo::TopologySim sim(smallClos(), defaults);
    for (size_t tor : kTors)
        sim.originate(tor, topo::scenarioPrefix(tor, 0), 0);
    ASSERT_TRUE(sim.runToConvergence(sim::nsFromSec(600.0)));
    topo::ConvergenceReport report = sim.report("ecmp", "clos");
    report.converged = sim.locRibsConsistent();
    EXPECT_EQ(runClos(1, 1, false), allRenderings(report));
}

TEST(EcmpDeterminism, MultipathGroupsFormOnTheFabric)
{
    auto countGroups = [](size_t max_paths) {
        topo::TopologySimConfig config;
        config.maxPaths = max_paths;
        topo::TopologySim sim(smallClos(), config);
        for (size_t tor : kTors)
            sim.originate(tor, topo::scenarioPrefix(tor, 0), 0);
        EXPECT_TRUE(sim.runToConvergence(sim::nsFromSec(600.0)));
        size_t groups = 0;
        for (size_t node = 0; node < 10; ++node) {
            sim.speaker(node).locRib().forEach(
                [&](const net::Prefix &,
                    const bgp::LocRib::Entry &entry) {
                    if (!entry.multipath.empty())
                        ++groups;
                });
        }
        return groups;
    };
    // Single-path mode never populates a group; with maximum-paths 4
    // the tor -> remote-pod routes fan across both aggs and spines.
    EXPECT_EQ(countGroups(1), 0u);
    EXPECT_GT(countGroups(4), 0u);
}

TEST(EcmpDeterminism, MultipathMembersAreRealAlternatives)
{
    topo::TopologySimConfig config;
    config.maxPaths = 4;
    topo::TopologySim sim(smallClos(), config);
    for (size_t tor : kTors)
        sim.originate(tor, topo::scenarioPrefix(tor, 0), 0);
    ASSERT_TRUE(sim.runToConvergence(sim::nsFromSec(600.0)));
    ASSERT_TRUE(sim.locRibsConsistent());

    for (size_t node = 0; node < 10; ++node) {
        sim.speaker(node).locRib().forEach(
            [&](const net::Prefix &,
                const bgp::LocRib::Entry &entry) {
                for (const bgp::Candidate &member : entry.multipath) {
                    // Group members come from distinct peers and are
                    // never the best path itself.
                    EXPECT_NE(member.peer, entry.best.peer);
                    // Equal AS-path length is the ECMP entry ticket.
                    EXPECT_EQ(member.attributes->asPath.pathLength(),
                              entry.best.attributes->asPath
                                  .pathLength());
                }
            });
    }
}
