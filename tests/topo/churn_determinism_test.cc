/**
 * @file
 * Determinism suite for the churn scenario family: declarative
 * ScenarioSpec runs with flap trains, beacon trains, and correlated
 * session resets across the shard cut must render byte-identically at
 * jobs = 1, 2, 4, 8 with adaptive sync on and off — including with
 * damping wakeups and MRAI batching active, the two features whose
 * timer traffic is the newest way a parallel schedule could leak into
 * a report. Also pins the pure-function fault-schedule expansion and
 * the four-AS demo spec against its hand-rolled legacy equivalent.
 */

#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "topo/partition.hh"
#include "topo/scenario_spec.hh"
#include "topo/scenarios.hh"
#include "topo/topology.hh"
#include "topo/topology_sim.hh"

using namespace bgpbench;

namespace
{

const std::vector<size_t> kJobCounts = {1, 2, 4, 8};

/** Every deterministic rendering of a scenario result. */
std::string
allRenderings(const topo::ScenarioResult &result)
{
    std::ostringstream os;
    os << result.convergence.toJson() << '\n';
    result.convergence.printCsv(os, true);
    result.convergence.printText(os);
    os << result.stability.toJson() << '\n';
    result.stability.printText(os);
    return os.str();
}

/**
 * Run the spec builder once per (jobs, adaptive) cell and expect
 * every rendering to match the sequential adaptive baseline byte for
 * byte.
 */
template <typename Fn>
void
expectIdenticalAcrossJobs(const char *label, Fn &&makeSpec)
{
    auto run = [&](size_t jobs, bool adaptive) {
        topo::ScenarioSpec spec = makeSpec();
        spec.simConfig.jobs = jobs;
        spec.simConfig.adaptiveSync = adaptive;
        topo::ScenarioResult result =
            topo::ScenarioRunner(std::move(spec)).run();
        EXPECT_TRUE(result.convergence.converged) << label;
        return allRenderings(result);
    };
    std::string baseline = run(1, true);
    EXPECT_FALSE(baseline.empty());
    for (size_t jobs : kJobCounts) {
        for (bool adaptive : {true, false}) {
            SCOPED_TRACE(std::string(label) + " jobs=" +
                         std::to_string(jobs) + " adaptive=" +
                         (adaptive ? "on" : "off"));
            EXPECT_EQ(run(jobs, adaptive), baseline);
        }
    }
}

} // namespace

TEST(ChurnDeterminism, FlapTrainMatrixIsByteIdentical)
{
    // Flap + beacon trains with damping and MRAI active: suppression
    // state, reuse wakeups, and deferred flushes all run under the
    // parallel engine and must not leak the schedule into a byte.
    expectIdenticalAcrossJobs("flap train", [] {
        topo::ScenarioSpec spec;
        spec.name = "flap-train";
        spec.shape = "random";
        spec.topology = topo::Topology::barabasiAlbert(16, 2, 42);
        spec.simConfig.damping = topo::churnDampingConfig();
        spec.simConfig.mraiNs = sim::nsFromMs(30);
        spec.faults.linkFlapTrain(1, 0, sim::nsFromMs(100), 50, 4,
                                  sim::nsFromMs(10), 7);
        spec.faults.beaconTrain(2, 0, sim::nsFromMs(25),
                                sim::nsFromMs(100), 4);
        return spec;
    });
}

TEST(ChurnDeterminism, CorrelatedResetAcrossShardCutIsByteIdentical)
{
    // Reset every link of the 4-shard cut at the same instant: the
    // correlated burst lands on the exact links whose messages cross
    // shards, the worst case for event mirroring.
    topo::Topology shape = topo::Topology::ring(16);
    std::vector<size_t> cut = topo::crossShardLinks(
        shape, topo::partitionTopology(shape, 4));
    ASSERT_FALSE(cut.empty());

    expectIdenticalAcrossJobs("correlated reset", [&cut] {
        topo::ScenarioSpec spec;
        spec.name = "correlated-reset";
        spec.shape = "ring";
        spec.topology = topo::Topology::ring(16);
        spec.faults.correlatedReset(cut, sim::nsFromMs(1));
        return spec;
    });
}

TEST(ChurnDeterminism, MixedScheduleMatrixIsByteIdentical)
{
    // Every fault kind in one schedule, overlapping in time.
    expectIdenticalAcrossJobs("mixed schedule", [] {
        topo::ScenarioSpec spec;
        spec.name = "mixed";
        spec.shape = "random";
        spec.topology = topo::Topology::barabasiAlbert(14, 2, 9);
        spec.faults.linkFlapTrain(0, 0, sim::nsFromMs(50), 40, 3)
            .beaconTrain(3, 0, sim::nsFromMs(10), sim::nsFromMs(60),
                         3)
            .sessionReset(4, sim::nsFromMs(20))
            .routerRestart(5, sim::nsFromMs(80), sim::nsFromMs(15));
        return spec;
    });
}

TEST(ChurnDeterminism, FaultScheduleExpansionIsPure)
{
    auto build = [] {
        topo::FaultSchedule faults;
        faults.linkFlapTrain(3, sim::nsFromMs(5), sim::nsFromMs(100),
                             30, 8, sim::nsFromMs(20), 1234);
        return faults;
    };
    topo::FaultSchedule a = build();
    topo::FaultSchedule b = build();
    ASSERT_EQ(a.size(), 16u); // 8 cycles x (down + up)
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
        EXPECT_EQ(a.events()[i].at, b.events()[i].at);
        EXPECT_EQ(a.events()[i].link, 3u);
    }
    // Cycle c: down in [start + c*period, + jitter], up exactly
    // period * duty/100 later; the train ends with the link up.
    for (size_t c = 0; c < 8; ++c) {
        const topo::FaultEvent &down = a.events()[2 * c];
        const topo::FaultEvent &up = a.events()[2 * c + 1];
        EXPECT_EQ(down.kind, topo::FaultEvent::Kind::LinkDown);
        EXPECT_EQ(up.kind, topo::FaultEvent::Kind::LinkUp);
        sim::SimTime base = sim::nsFromMs(5) + c * sim::nsFromMs(100);
        EXPECT_GE(down.at, base);
        EXPECT_LE(down.at, base + sim::nsFromMs(20));
        EXPECT_EQ(up.at - down.at, sim::nsFromMs(100) * 30 / 100);
    }
    EXPECT_EQ(a.events().back().kind, topo::FaultEvent::Kind::LinkUp);

    // Beacon trains end announced and count as prefix transactions.
    topo::FaultSchedule beacon;
    beacon.beaconTrain(2, 0, 0, sim::nsFromMs(40), 5);
    ASSERT_EQ(beacon.size(), 10u);
    EXPECT_EQ(beacon.events().back().kind,
              topo::FaultEvent::Kind::PrefixUp);
    EXPECT_EQ(beacon.prefixEvents(), 10u);
    EXPECT_EQ(a.prefixEvents(), 0u);
}

TEST(ChurnDeterminism, FourAsSpecMatchesHandRolledDemo)
{
    // The declarative demo spec must reproduce, byte for byte, what
    // the bgp_network example's hand-rolled sequence produces.
    // Note the demo's converged flag is false by design: the martian
    // filter keeps the backbone's Loc-RIB intentionally different
    // from isp-b's, so the network-wide consistency check cannot
    // pass. The two runs must still agree on every byte.
    topo::ScenarioResult from_spec =
        topo::ScenarioRunner(topo::demo::fourAsScenario()).run();

    topo::demo::FourAsNetwork net = topo::demo::fourAsPolicyTopology();
    topo::TopologySimConfig config;
    topo::TopologySim sim(std::move(net.topology), config);
    ASSERT_TRUE(sim.runToConvergence(sim::nsFromSec(60.0)));
    sim.tracker().markPhaseStart(sim.now());
    topo::demo::originateDemoRoutes(sim, net, sim.now());
    bool converged = sim.runToConvergence(sim::nsFromSec(60.0));
    topo::ConvergenceReport report =
        sim.report("four-as-demo", "four-as");
    report.converged = converged && sim.locRibsConsistent();

    EXPECT_EQ(from_spec.convergence.toJson(), report.toJson());
}
