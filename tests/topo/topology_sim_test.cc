/**
 * @file
 * Tests for TopologySim: route propagation across chained routers
 * with correct eBGP/iBGP AS-path and NEXT_HOP semantics, plus fault
 * injection.
 */

#include <gtest/gtest.h>

#include "topo/topology_sim.hh"

using namespace bgpbench;

namespace
{

constexpr sim::SimTime kLimit = sim::nsFromSec(60.0);

topo::NodeConfig
node(const std::string &name, bgp::AsNumber asn, uint32_t id)
{
    topo::NodeConfig config;
    config.name = name;
    config.asn = asn;
    config.routerId = id;
    config.address = net::Ipv4Address(10, 0, uint8_t(id), 1);
    config.profile = router::xeonProfile();
    return config;
}

const bgp::LocRib::Entry *
ribEntry(const topo::TopologySim &sim, size_t at,
         const net::Prefix &prefix)
{
    return sim.speaker(at).locRib().find(prefix);
}

} // namespace

TEST(TopologySim, EbgpLinePropagation)
{
    // a(AS100) -- b(AS200) -- c(AS300): all eBGP. Each hop must
    // prepend its AS and rewrite NEXT_HOP to its own address.
    topo::Topology topo;
    topo.addNode(node("a", 100, 1));
    topo.addNode(node("b", 200, 2));
    topo.addNode(node("c", 300, 3));
    topo.addLink(0, 1, sim::nsFromMs(1), 100.0);
    topo.addLink(1, 2, sim::nsFromMs(1), 100.0);

    topo::TopologySim sim(topo);
    ASSERT_TRUE(sim.runToConvergence(kLimit));
    EXPECT_EQ(sim.speaker(0).sessionState(0),
              bgp::SessionState::Established);

    net::Prefix prefix = net::Prefix::fromString("192.0.2.0/24");
    sim.originate(0, prefix, sim.simulator().now());
    ASSERT_TRUE(sim.runToConvergence(kLimit));

    const auto *at_b = ribEntry(sim, 1, prefix);
    ASSERT_NE(at_b, nullptr);
    EXPECT_EQ(at_b->best.attributes->asPath.toString(), "100");
    EXPECT_EQ(at_b->best.attributes->nextHop, topo.node(0).address);

    const auto *at_c = ribEntry(sim, 2, prefix);
    ASSERT_NE(at_c, nullptr);
    EXPECT_EQ(at_c->best.attributes->asPath.toString(), "200 100");
    EXPECT_EQ(at_c->best.attributes->nextHop, topo.node(1).address);

    EXPECT_TRUE(sim.locRibsConsistent());
}

TEST(TopologySim, IbgpPreservesPathAndNextHop)
{
    // a(AS100) -- b(AS200) -- c(AS200): the b--c session is iBGP, so
    // b must pass the route on without prepending and without
    // touching NEXT_HOP (it still points at a).
    topo::Topology topo;
    topo.addNode(node("a", 100, 1));
    topo.addNode(node("b", 200, 2));
    topo.addNode(node("c", 200, 3));
    topo.addLink(0, 1, sim::nsFromMs(1), 100.0);
    topo.addLink(1, 2, sim::nsFromMs(1), 100.0);
    EXPECT_FALSE(topo.isIbgp(0));
    EXPECT_TRUE(topo.isIbgp(1));

    topo::TopologySim sim(topo);
    ASSERT_TRUE(sim.runToConvergence(kLimit));

    net::Prefix prefix = net::Prefix::fromString("192.0.2.0/24");
    sim.originate(0, prefix, sim.simulator().now());
    ASSERT_TRUE(sim.runToConvergence(kLimit));

    const auto *at_c = ribEntry(sim, 2, prefix);
    ASSERT_NE(at_c, nullptr);
    EXPECT_EQ(at_c->best.attributes->asPath.toString(), "100");
    EXPECT_EQ(at_c->best.attributes->nextHop, topo.node(0).address);
}

TEST(TopologySim, WithdrawPropagates)
{
    topo::Topology topo = topo::Topology::line(3);
    topo::TopologySim sim(topo);
    ASSERT_TRUE(sim.runToConvergence(kLimit));

    net::Prefix prefix = net::Prefix::fromString("192.0.2.0/24");
    sim.originate(0, prefix, sim.simulator().now());
    ASSERT_TRUE(sim.runToConvergence(kLimit));
    ASSERT_NE(ribEntry(sim, 2, prefix), nullptr);

    sim.withdrawLocal(0, prefix, sim.simulator().now());
    ASSERT_TRUE(sim.runToConvergence(kLimit));
    EXPECT_EQ(ribEntry(sim, 2, prefix), nullptr);
    EXPECT_TRUE(sim.originated().empty());
}

TEST(TopologySim, LinkDownFlushesAndLinkUpRelearns)
{
    topo::Topology topo = topo::Topology::line(3);
    topo::TopologySim sim(topo);
    ASSERT_TRUE(sim.runToConvergence(kLimit));

    net::Prefix prefix = net::Prefix::fromString("192.0.2.0/24");
    sim.originate(0, prefix, sim.simulator().now());
    ASSERT_TRUE(sim.runToConvergence(kLimit));

    // Cutting r1--r2 must withdraw the route from r2.
    sim.scheduleLinkDown(1, sim.simulator().now());
    ASSERT_TRUE(sim.runToConvergence(kLimit));
    EXPECT_FALSE(sim.linkUp(1));
    EXPECT_EQ(ribEntry(sim, 2, prefix), nullptr);
    EXPECT_NE(ribEntry(sim, 1, prefix), nullptr);
    EXPECT_TRUE(sim.locRibsConsistent());

    // Restoring the link re-establishes the session and the route
    // comes back with the full-table exchange.
    sim.scheduleLinkUp(1, sim.simulator().now());
    ASSERT_TRUE(sim.runToConvergence(kLimit));
    EXPECT_TRUE(sim.linkUp(1));
    ASSERT_NE(ribEntry(sim, 2, prefix), nullptr);
    EXPECT_EQ(ribEntry(sim, 2, prefix)->best.attributes->asPath
                  .toString(),
              "101 100");
}

TEST(TopologySim, SessionResetReconverges)
{
    topo::Topology topo = topo::Topology::line(3);
    topo::TopologySim sim(topo);
    ASSERT_TRUE(sim.runToConvergence(kLimit));

    net::Prefix prefix = net::Prefix::fromString("192.0.2.0/24");
    sim.originate(0, prefix, sim.simulator().now());
    ASSERT_TRUE(sim.runToConvergence(kLimit));

    sim.scheduleSessionReset(1, sim.simulator().now());
    ASSERT_TRUE(sim.runToConvergence(kLimit));
    EXPECT_EQ(sim.speaker(2).sessionState(1),
              bgp::SessionState::Established);
    ASSERT_NE(ribEntry(sim, 2, prefix), nullptr);
    EXPECT_TRUE(sim.locRibsConsistent());
}

TEST(TopologySim, RouterRestartRelearnsRoutes)
{
    topo::Topology topo = topo::Topology::line(3);
    topo::TopologySim sim(topo);
    ASSERT_TRUE(sim.runToConvergence(kLimit));

    net::Prefix prefix = net::Prefix::fromString("192.0.2.0/24");
    sim.originate(0, prefix, sim.simulator().now());
    ASSERT_TRUE(sim.runToConvergence(kLimit));

    sim.scheduleRouterRestart(1, sim.simulator().now(),
                              sim::nsFromMs(50));
    ASSERT_TRUE(sim.runToConvergence(kLimit));
    EXPECT_EQ(sim.speaker(1).sessionState(0),
              bgp::SessionState::Established);
    EXPECT_EQ(sim.speaker(1).sessionState(1),
              bgp::SessionState::Established);
    ASSERT_NE(ribEntry(sim, 2, prefix), nullptr);
    EXPECT_TRUE(sim.locRibsConsistent());
}

TEST(TopologySim, ProcessingCostSlowsConvergence)
{
    // The same scenario on a slower SystemProfile must take longer in
    // virtual time: the per-node cost model is what paces the run.
    auto run = [](const router::SystemProfile &profile) {
        topo::GenOptions opts;
        opts.profile = profile;
        topo::Topology topo = topo::Topology::line(5, opts);
        topo::TopologySim sim(topo);
        sim.runToConvergence(kLimit);
        sim.tracker().markPhaseStart(sim.simulator().now());
        for (size_t i = 0; i < 5; ++i) {
            sim.originate(
                i,
                net::Prefix(net::Ipv4Address(100, 0, uint8_t(i), 0),
                            24),
                sim.simulator().now());
        }
        sim.runToConvergence(kLimit);
        return sim.tracker().convergenceTimeSec();
    };

    double fast = run(router::xeonProfile());
    double slow = run(router::pentium3Profile());
    EXPECT_GT(slow, fast);
}
