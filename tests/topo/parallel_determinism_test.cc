/**
 * @file
 * Determinism regression suite for the parallel topology engine: for
 * a fixed topology and scenario, runs at jobs = 1, 2, 4, 8 (and auto)
 * must produce byte-identical JSON, CSV, and text reports — including
 * scenarios that inject faults while convergence traffic is still in
 * flight, which in a parallel run lands mid-lookahead-window.
 */

#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/observability.hh"
#include "obs/views.hh"
#include "topo/scenarios.hh"
#include "topo/topology.hh"
#include "topo/topology_sim.hh"

using namespace bgpbench;

namespace
{

const std::vector<size_t> kJobCounts = {1, 2, 4, 8};

/** All three renderings of a report, concatenated. */
std::string
allRenderings(const topo::ConvergenceReport &report)
{
    std::ostringstream os;
    os << report.toJson() << '\n';
    report.printCsv(os, true);
    report.printText(os);
    return os.str();
}

topo::ScenarioOptions
optionsWithJobs(size_t jobs)
{
    topo::ScenarioOptions opts;
    opts.simConfig.jobs = jobs;
    return opts;
}

/**
 * Run @p scenario once per job count and expect every rendering to
 * match the sequential baseline byte for byte.
 */
template <typename Fn>
void
expectIdenticalAcrossJobs(const char *label, Fn &&scenario)
{
    std::string baseline = allRenderings(scenario(size_t(1)));
    EXPECT_FALSE(baseline.empty());
    for (size_t jobs : kJobCounts) {
        SCOPED_TRACE(std::string(label) + " jobs=" +
                     std::to_string(jobs));
        EXPECT_EQ(allRenderings(scenario(jobs)), baseline);
    }
}

} // namespace

TEST(ParallelDeterminism, AnnounceOnMesh)
{
    expectIdenticalAcrossJobs("mesh announce", [](size_t jobs) {
        return topo::runAnnounceScenario(topo::Topology::fullMesh(12),
                                         "mesh", optionsWithJobs(jobs));
    });
}

TEST(ParallelDeterminism, AnnounceOnRandomGraph)
{
    expectIdenticalAcrossJobs("ba announce", [](size_t jobs) {
        return topo::runAnnounceScenario(
            topo::Topology::barabasiAlbert(24, 2, 42), "random",
            optionsWithJobs(jobs));
    });
}

TEST(ParallelDeterminism, LinkFailureOnRing)
{
    expectIdenticalAcrossJobs("ring link failure", [](size_t jobs) {
        return topo::runLinkFailureScenario(topo::Topology::ring(16),
                                            "ring", 3,
                                            optionsWithJobs(jobs));
    });
}

TEST(ParallelDeterminism, RouterRebootOnRandomGraph)
{
    expectIdenticalAcrossJobs("ba reboot", [](size_t jobs) {
        return topo::runRouterRebootScenario(
            topo::Topology::barabasiAlbert(24, 2, 7), "random", 0,
            sim::nsFromMs(50), optionsWithJobs(jobs));
    });
}

TEST(ParallelDeterminism, FaultsInjectedMidConvergence)
{
    // Faults landing while announcement traffic is still in flight:
    // a link flap and a session reset are scheduled a few hundred
    // microseconds into convergence, far below the time the network
    // needs to settle, so parallel runs hit them mid-window.
    expectIdenticalAcrossJobs("mid-flight faults", [](size_t jobs) {
        topo::TopologySimConfig config;
        config.jobs = jobs;
        topo::TopologySim sim(topo::Topology::barabasiAlbert(20, 2, 5),
                              config);
        for (size_t node = 0; node < 20; ++node)
            sim.originate(node, topo::scenarioPrefix(node, 0), 0);
        sim.scheduleLinkDown(2, sim::nsFromUs(300));
        sim.scheduleSessionReset(5, sim::nsFromUs(450));
        sim.scheduleLinkUp(2, sim::nsFromMs(2));
        sim.scheduleRouterRestart(1, sim::nsFromMs(3),
                                  sim::nsFromMs(10));
        bool converged = sim.runToConvergence(sim::nsFromSec(600.0));
        EXPECT_TRUE(converged);
        topo::ConvergenceReport report =
            sim.report("mid-flight", "random");
        report.converged = converged && sim.locRibsConsistent();
        return report;
    });
}

TEST(ParallelDeterminism, WithdrawMidConvergence)
{
    expectIdenticalAcrossJobs("withdraw", [](size_t jobs) {
        topo::TopologySimConfig config;
        config.jobs = jobs;
        topo::TopologySim sim(topo::Topology::ring(12), config);
        for (size_t node = 0; node < 12; ++node)
            sim.originate(node, topo::scenarioPrefix(node, 0), 0);
        sim.withdrawLocal(4, topo::scenarioPrefix(4, 0),
                          sim::nsFromUs(500));
        bool converged = sim.runToConvergence(sim::nsFromSec(600.0));
        EXPECT_TRUE(converged);
        topo::ConvergenceReport report = sim.report("withdraw", "ring");
        report.converged = converged && sim.locRibsConsistent();
        return report;
    });
}

TEST(ParallelDeterminism, AutoJobsMatchesSequential)
{
    auto run = [](size_t jobs) {
        return topo::runAnnounceScenario(topo::Topology::ring(12),
                                         "ring", optionsWithJobs(jobs))
            .toJson();
    };
    // jobs = 0 resolves to the hardware concurrency, whatever that
    // is on the host; the report must still match.
    EXPECT_EQ(run(0), run(1));
}

TEST(ParallelDeterminism, EngineResolvesRequestedShards)
{
    // Adaptive sync over-decomposes: 4 workers get ~8 shards to
    // steal among; the worker count is what jobs() reports.
    topo::TopologySimConfig config;
    config.jobs = 4;
    config.adaptiveSync = true;
    topo::TopologySim sim(topo::Topology::ring(16), config);
    EXPECT_EQ(sim.jobs(), 4u);
    EXPECT_EQ(sim.partition().shardCount, 8u);
    EXPECT_TRUE(sim.windowController().adaptive());
    EXPECT_GE(sim.windowController().capNs(),
              sim.windowController().floorNs());

    for (size_t node = 0; node < 16; ++node)
        sim.originate(node, topo::scenarioPrefix(node, 0), 0);
    ASSERT_TRUE(sim.runToConvergence(sim::nsFromSec(600.0)));

    obs::MetricRegistry metrics;
    sim.publishParallelMetrics(metrics);
    EXPECT_EQ(metrics.gaugeValue(obs::metric::parallelJobs), 4.0);
    EXPECT_EQ(metrics.gaugeValue(obs::metric::parallelShards), 8.0);
    EXPECT_GT(metrics.counterValue(obs::metric::parallelWindows), 0u);
    EXPECT_GT(metrics.counterValue(obs::metric::topoWindowLenNs), 0u);
    EXPECT_GT(metrics.gaugeValue(obs::metric::parallelLookaheadNs),
              0.0);
    uint64_t events = 0;
    for (size_t shard = 0; shard < 8; ++shard) {
        EXPECT_EQ(metrics.gaugeValue(
                      obs::shardMetricName(shard, "nodes")),
                  2.0);
        events += metrics.counterValue(
            obs::shardMetricName(shard, "events"));
    }
    EXPECT_GT(events, 0u);
}

TEST(ParallelDeterminism, FixedSyncKeepsOneShardPerWorker)
{
    // The BGPBENCH_NO_ADAPTIVE_SYNC ablation restores the PR 3
    // layout exactly: one shard per worker, target pinned to the
    // smallest cut-link latency.
    topo::TopologySimConfig config;
    config.jobs = 4;
    config.adaptiveSync = false;
    topo::TopologySim sim(topo::Topology::ring(16), config);
    EXPECT_EQ(sim.jobs(), 4u);
    EXPECT_EQ(sim.partition().shardCount, 4u);
    EXPECT_FALSE(sim.windowController().adaptive());
    EXPECT_EQ(sim.windowController().targetNs(),
              sim.windowController().floorNs());

    for (size_t node = 0; node < 16; ++node)
        sim.originate(node, topo::scenarioPrefix(node, 0), 0);
    ASSERT_TRUE(sim.runToConvergence(sim::nsFromSec(600.0)));

    obs::MetricRegistry metrics;
    sim.publishParallelMetrics(metrics);
    EXPECT_EQ(metrics.gaugeValue(obs::metric::parallelJobs), 4.0);
    EXPECT_EQ(metrics.gaugeValue(obs::metric::parallelShards), 4.0);
    for (size_t shard = 0; shard < 4; ++shard) {
        EXPECT_EQ(metrics.gaugeValue(
                      obs::shardMetricName(shard, "nodes")),
                  4.0);
    }
}

TEST(ParallelDeterminism, AdaptiveSyncMatrixIsByteIdentical)
{
    // The full ablation matrix: jobs 1/2/4/8 x adaptive on/off, with
    // faults landing mid-window, all byte-identical to the
    // sequential adaptive baseline. This is the acceptance bar of
    // the adaptive engine: the window policy, the batch merge, and
    // the stealing may change the execution schedule, never a report
    // byte.
    auto run = [](size_t jobs, bool adaptive) {
        topo::TopologySimConfig config;
        config.jobs = jobs;
        config.adaptiveSync = adaptive;
        topo::TopologySim sim(
            topo::Topology::barabasiAlbert(20, 2, 5), config);
        for (size_t node = 0; node < 20; ++node)
            sim.originate(node, topo::scenarioPrefix(node, 0), 0);
        sim.scheduleLinkDown(2, sim::nsFromUs(300));
        sim.scheduleSessionReset(5, sim::nsFromUs(450));
        sim.scheduleLinkUp(2, sim::nsFromMs(2));
        sim.scheduleRouterRestart(1, sim::nsFromMs(3),
                                  sim::nsFromMs(10));
        bool converged = sim.runToConvergence(sim::nsFromSec(600.0));
        EXPECT_TRUE(converged);
        topo::ConvergenceReport report =
            sim.report("adaptive-matrix", "random");
        report.converged = converged && sim.locRibsConsistent();
        return allRenderings(report);
    };
    std::string baseline = run(1, true);
    EXPECT_FALSE(baseline.empty());
    for (size_t jobs : kJobCounts) {
        for (bool adaptive : {true, false}) {
            SCOPED_TRACE("jobs=" + std::to_string(jobs) +
                         " adaptive=" + (adaptive ? "on" : "off"));
            EXPECT_EQ(run(jobs, adaptive), baseline);
        }
    }
}

TEST(ParallelDeterminism, TracingDoesNotPerturbReports)
{
    // The observability layer must be a pure observer: attaching a
    // registry and trace buffer (and varying the job count under
    // them) cannot change a single report byte relative to the
    // detached sequential baseline.
    auto run = [](size_t jobs, obs::RunObservability *obs) {
        topo::ScenarioOptions opts;
        opts.simConfig.jobs = jobs;
        opts.simConfig.obs = obs;
        return allRenderings(topo::runLinkFailureScenario(
            topo::Topology::ring(12), "ring", 0, opts));
    };
    std::string baseline = run(1, nullptr);
    EXPECT_FALSE(baseline.empty());
    for (size_t jobs : kJobCounts) {
        SCOPED_TRACE("jobs=" + std::to_string(jobs));
        obs::RunObservability obs;
        EXPECT_EQ(run(jobs, &obs), baseline);
        EXPECT_EQ(run(jobs, nullptr), baseline);
        // The traced run actually observed something.
        EXPECT_FALSE(obs.trace.empty());
    }
}

TEST(ParallelDeterminism, ShardCountClampsToNodes)
{
    topo::TopologySimConfig config;
    config.jobs = 64;
    topo::TopologySim sim(topo::Topology::line(3), config);
    EXPECT_EQ(sim.jobs(), 3u);
    for (size_t node = 0; node < 3; ++node)
        sim.originate(node, topo::scenarioPrefix(node, 0), 0);
    EXPECT_TRUE(sim.runToConvergence(sim::nsFromSec(600.0)));
    EXPECT_TRUE(sim.locRibsConsistent());
}

TEST(ParallelDeterminism, ZeroLatencyCutFallsBackToSequential)
{
    // Zero-latency links leave no conservative lookahead; the engine
    // must degrade to one shard instead of deadlocking on empty
    // windows.
    topo::Topology topo;
    for (size_t i = 0; i < 4; ++i)
        topo.addNode(topo::Topology::defaultNode(i, {}));
    for (size_t i = 0; i + 1 < 4; ++i)
        topo.addLink(i, i + 1, 0, 100.0);

    topo::TopologySimConfig config;
    config.jobs = 2;
    topo::TopologySim sim(std::move(topo), config);
    EXPECT_EQ(sim.jobs(), 1u);
    for (size_t node = 0; node < 4; ++node)
        sim.originate(node, topo::scenarioPrefix(node, 0), 0);
    EXPECT_TRUE(sim.runToConvergence(sim::nsFromSec(600.0)));
    EXPECT_TRUE(sim.locRibsConsistent());
}
