/**
 * @file
 * Unit tests for the adaptive window controller and the work-stealing
 * deque. The controller's determinism contract — the target-length
 * sequence is a pure function of the observation sequence — is what
 * lets adaptive parallel runs stay byte-identical, so it is pinned
 * here directly, including the exact replay of an L-sequence.
 */

#include <cstdlib>
#include <vector>

#include <gtest/gtest.h>

#include "topo/steal_deque.hh"
#include "topo/sync_window.hh"

using namespace bgpbench;
using topo::StealDeque;
using topo::WindowController;

namespace
{

/** RAII environment override (mirrors runtime_config_test.cc). */
class EnvVar
{
  public:
    EnvVar(const char *name, const char *value) : name_(name)
    {
        const char *old = std::getenv(name);
        if (old) {
            had_ = true;
            old_ = old;
        }
        if (value)
            ::setenv(name, value, 1);
        else
            ::unsetenv(name);
    }

    ~EnvVar()
    {
        if (had_)
            ::setenv(name_, old_.c_str(), 1);
        else
            ::unsetenv(name_);
    }

  private:
    const char *name_;
    bool had_ = false;
    std::string old_;
};

} // namespace

TEST(WindowController, StartsAtCapWhenAdaptive)
{
    WindowController ctl(1000, 4, true);
    EXPECT_TRUE(ctl.adaptive());
    EXPECT_EQ(ctl.floorNs(), 1000u);
    EXPECT_EQ(ctl.capNs(), 1000u << 10);
    EXPECT_EQ(ctl.targetNs(), ctl.capNs());
}

TEST(WindowController, FixedModePinsTargetToFloor)
{
    WindowController ctl(1000, 4, false);
    EXPECT_FALSE(ctl.adaptive());
    EXPECT_EQ(ctl.targetNs(), 1000u);
    // Observations are ignored entirely in fixed mode.
    ctl.observe(1u << 20);
    EXPECT_EQ(ctl.targetNs(), 1000u);
    ctl.observe(0);
    EXPECT_EQ(ctl.targetNs(), 1000u);
}

TEST(WindowController, BurstsShrinkMonotonicallyToFloor)
{
    WindowController ctl(1000, 4, true);
    uint64_t burst = ctl.burstThreshold() + 1;
    sim::SimTime previous = ctl.targetNs();
    // Sustained bursts halve the target every window until it sits
    // on the floor, and never move it upward in between.
    while (ctl.targetNs() > ctl.floorNs()) {
        ctl.observe(burst);
        EXPECT_LE(ctl.targetNs(), previous);
        EXPECT_GE(ctl.targetNs(), ctl.floorNs());
        previous = ctl.targetNs();
    }
    ctl.observe(burst);
    EXPECT_EQ(ctl.targetNs(), ctl.floorNs());
}

TEST(WindowController, SilenceGrowsBackToCap)
{
    WindowController ctl(1000, 4, true);
    while (ctl.targetNs() > ctl.floorNs())
        ctl.observe(ctl.burstThreshold() + 1);
    // Quiet windows double the target; the cap is a hard ceiling.
    sim::SimTime previous = ctl.targetNs();
    while (ctl.targetNs() < ctl.capNs()) {
        ctl.observe(0);
        EXPECT_GE(ctl.targetNs(), previous);
        previous = ctl.targetNs();
    }
    ctl.observe(0);
    EXPECT_EQ(ctl.targetNs(), ctl.capNs());
}

TEST(WindowController, ModerateTrafficHoldsTarget)
{
    WindowController ctl(1000, 4, true);
    ctl.observe(ctl.burstThreshold() + 1);
    sim::SimTime held = ctl.targetNs();
    // Between silence and burst the target holds steady.
    ctl.observe(1);
    ctl.observe(ctl.burstThreshold());
    EXPECT_EQ(ctl.targetNs(), held);
}

TEST(WindowController, BurstThresholdScalesWithCutWidth)
{
    EXPECT_EQ(WindowController(10, 0, true).burstThreshold(), 64u);
    EXPECT_EQ(WindowController(10, 16, true).burstThreshold(), 64u);
    EXPECT_EQ(WindowController(10, 100, true).burstThreshold(), 400u);
}

TEST(WindowController, IdenticalObservationsReplayIdenticalTargets)
{
    // The determinism contract: the same observation sequence yields
    // the same target sequence, step by step.
    std::vector<uint64_t> observations = {0,   500, 0, 100000, 100000,
                                          0,   0,   3, 100000, 0,
                                          999, 0,   0, 100000, 64};
    WindowController a(2000, 8, true);
    WindowController b(2000, 8, true);
    for (uint64_t n : observations) {
        a.observe(n);
        b.observe(n);
        ASSERT_EQ(a.targetNs(), b.targetNs());
    }
}

TEST(WindowController, ZeroFloorStaysZero)
{
    // A zero floor (no cut, or a degenerate zero-latency cut the
    // engine refuses anyway) must not blow up into a nonzero cap.
    WindowController ctl(0, 0, true);
    EXPECT_EQ(ctl.capNs(), 0u);
    EXPECT_EQ(ctl.targetNs(), 0u);
    ctl.observe(0);
    EXPECT_EQ(ctl.targetNs(), 0u);
}

TEST(WindowController, HugeFloorSaturatesInsteadOfOverflowing)
{
    sim::SimTime floor = sim::simTimeNever >> 2;
    WindowController ctl(floor, 1, true);
    EXPECT_GE(ctl.capNs(), floor);
    EXPECT_LT(ctl.capNs(), sim::simTimeNever);
    // Doubling from a near-saturated target must stay clamped.
    ctl.observe(0);
    ctl.observe(0);
    EXPECT_EQ(ctl.targetNs(), ctl.capNs());
}

TEST(WindowController, DefaultFollowsEnvironmentFlag)
{
    {
        EnvVar unset("BGPBENCH_NO_ADAPTIVE_SYNC", nullptr);
        EXPECT_TRUE(topo::adaptiveSyncDefault());
    }
    {
        EnvVar set("BGPBENCH_NO_ADAPTIVE_SYNC", "1");
        EXPECT_FALSE(topo::adaptiveSyncDefault());
    }
    {
        // Exactly "1", like the other BGPBENCH_NO_* one-flags.
        EnvVar other("BGPBENCH_NO_ADAPTIVE_SYNC", "yes");
        EXPECT_TRUE(topo::adaptiveSyncDefault());
    }
}

TEST(StealDeque, OwnerPopsFifoThiefPopsLifo)
{
    StealDeque deque;
    EXPECT_TRUE(deque.empty());
    deque.push(1);
    deque.push(2);
    deque.push(3);
    uint32_t task = 0;
    ASSERT_TRUE(deque.popFront(task));
    EXPECT_EQ(task, 1u);
    ASSERT_TRUE(deque.popBack(task));
    EXPECT_EQ(task, 3u);
    ASSERT_TRUE(deque.popFront(task));
    EXPECT_EQ(task, 2u);
    EXPECT_TRUE(deque.empty());
    EXPECT_FALSE(deque.popFront(task));
    EXPECT_FALSE(deque.popBack(task));
}

TEST(StealDeque, EveryTaskPoppedExactlyOnce)
{
    StealDeque deque;
    for (uint32_t t = 0; t < 100; ++t)
        deque.push(t);
    std::vector<bool> seen(100, false);
    uint32_t task = 0;
    // Alternate owner and thief pops; each id must surface once.
    for (size_t i = 0; i < 100; ++i) {
        bool ok = (i % 2 == 0) ? deque.popFront(task)
                               : deque.popBack(task);
        ASSERT_TRUE(ok);
        ASSERT_LT(task, 100u);
        EXPECT_FALSE(seen[task]);
        seen[task] = true;
    }
    EXPECT_TRUE(deque.empty());
}
