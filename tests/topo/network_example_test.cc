/**
 * @file
 * Asserts the behaviour demonstrated by examples/bgp_network.cpp:
 * the four-AS policy topology, its steady state, and its failover.
 */

#include <gtest/gtest.h>

#include "topo/scenarios.hh"

using namespace bgpbench;
using topo::demo::FourAsNetwork;

namespace
{

constexpr sim::SimTime kLimit = sim::nsFromSec(60.0);

struct DemoRun
{
    FourAsNetwork net;
    topo::TopologySim sim;

    DemoRun()
        : net(topo::demo::fourAsPolicyTopology()), sim(net.topology)
    {
        sim.runToConvergence(kLimit);
        topo::demo::originateDemoRoutes(sim, net,
                                        sim.simulator().now());
        sim.runToConvergence(kLimit);
    }

    std::string
    pathAt(size_t node, const net::Prefix &prefix) const
    {
        const auto *entry = sim.speaker(node).locRib().find(prefix);
        if (!entry)
            return "<absent>";
        return entry->best.attributes->asPath.toString();
    }

    net::Ipv4Address
    nextHopAt(size_t node, const net::Prefix &prefix) const
    {
        const auto *entry = sim.speaker(node).locRib().find(prefix);
        return entry ? entry->best.attributes->nextHop
                     : net::Ipv4Address();
    }
};

} // namespace

TEST(NetworkExample, SteadyStatePolicies)
{
    DemoRun run;
    const FourAsNetwork &net = run.net;

    // LOCAL_PREF 200 steers the customer through isp-a even though
    // both ISPs offer equally long paths to the backbone.
    EXPECT_EQ(run.pathAt(net.customer, net.backbonePrefix),
              "200 400");
    EXPECT_EQ(run.pathAt(net.customer, net.backboneSecondaryPrefix),
              "200 400");
    EXPECT_EQ(run.nextHopAt(net.customer, net.backbonePrefix),
              net.topology.node(net.ispA).address);

    // The backbone reaches the customer via isp-a: isp-b's double
    // prepend makes its path four hops instead of two.
    EXPECT_EQ(run.pathAt(net.backbone, net.customerPrefix),
              "200 100");

    // isp-b's martian is filtered on both backbone sessions but
    // reaches the customer, which applies no such filter.
    EXPECT_EQ(run.sim.speaker(net.backbone)
                  .locRib()
                  .find(net.martianPrefix),
              nullptr);
    EXPECT_EQ(run.pathAt(net.customer, net.martianPrefix), "300");
}

TEST(NetworkExample, FailoverToBackupIsp)
{
    DemoRun run;
    const FourAsNetwork &net = run.net;

    run.sim.tracker().markPhaseStart(run.sim.simulator().now());
    run.sim.scheduleLinkDown(net.customerIspALink,
                             run.sim.simulator().now());
    ASSERT_TRUE(run.sim.runToConvergence(kLimit));
    EXPECT_GT(run.sim.tracker().convergenceTimeSec(), 0.0);

    // The customer fails over to isp-b's longer paths...
    EXPECT_EQ(run.pathAt(net.customer, net.backbonePrefix),
              "300 400");
    EXPECT_EQ(run.nextHopAt(net.customer, net.backbonePrefix),
              net.topology.node(net.ispB).address);

    // ...and the backbone now sees the prepended backup path.
    EXPECT_EQ(run.pathAt(net.backbone, net.customerPrefix),
              "300 300 300 100");
}

TEST(NetworkExample, MartianNeverLeaksToBackbone)
{
    DemoRun run;
    const FourAsNetwork &net = run.net;

    // Even after the failover reshuffles every path, the martian
    // filter must hold.
    run.sim.scheduleLinkDown(net.customerIspALink,
                             run.sim.simulator().now());
    ASSERT_TRUE(run.sim.runToConvergence(kLimit));
    EXPECT_EQ(run.sim.speaker(net.backbone)
                  .locRib()
                  .find(net.martianPrefix),
              nullptr);
    EXPECT_EQ(run.pathAt(net.customer, net.martianPrefix), "300");
}
