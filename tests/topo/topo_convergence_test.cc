/**
 * @file
 * Tests for the convergence tracker, the scenario runners, and the
 * determinism of the JSON reports.
 */

#include <gtest/gtest.h>

#include "topo/scenarios.hh"

using namespace bgpbench;

TEST(Scenarios, RandomTopologyConverges)
{
    // The benchmark's headline configuration: >= 20 routers of
    // preferential-attachment topology, every node originating one
    // prefix, run to full network-wide convergence.
    topo::ConvergenceReport report = topo::runAnnounceScenario(
        topo::Topology::barabasiAlbert(20, 2, 7), "random");
    EXPECT_TRUE(report.converged);
    EXPECT_EQ(report.nodes, 20u);
    EXPECT_GT(report.convergenceTimeSec, 0.0);
    EXPECT_GT(report.totalUpdates, 0u);
    EXPECT_GE(report.totalTransactions, report.totalUpdates);
    ASSERT_EQ(report.routers.size(), 20u);
    for (const topo::RouterReport &router : report.routers) {
        EXPECT_GT(router.transactions, 0u);
        EXPECT_GT(router.tps, 0.0);
    }
    // A meshy graph forces path exploration: some router must have
    // seen more than one candidate path for some prefix.
    EXPECT_GT(report.pathExplorationMax, 1u);
}

TEST(Scenarios, SameSeedSameReport)
{
    auto run = []() {
        return topo::runAnnounceScenario(
                   topo::Topology::barabasiAlbert(20, 2, 42), "random")
            .toJson();
    };
    std::string first = run();
    std::string second = run();
    EXPECT_FALSE(first.empty());
    EXPECT_EQ(first, second);

    std::string other =
        topo::runAnnounceScenario(
            topo::Topology::barabasiAlbert(20, 2, 43), "random")
            .toJson();
    EXPECT_NE(first, other);
}

TEST(Scenarios, RingLinkFailureReconverges)
{
    // A ring survives any single link failure; the report covers only
    // the re-convergence phase after the cut.
    topo::ConvergenceReport report = topo::runLinkFailureScenario(
        topo::Topology::ring(8), "ring", 0);
    EXPECT_TRUE(report.converged);
    EXPECT_EQ(report.scenario, "link-failure");
    EXPECT_GT(report.convergenceTimeSec, 0.0);
    EXPECT_GT(report.totalUpdates, 0u);
}

TEST(Scenarios, RouterRebootReconverges)
{
    topo::ConvergenceReport report = topo::runRouterRebootScenario(
        topo::Topology::ring(6), "ring", 0, sim::nsFromMs(50));
    EXPECT_TRUE(report.converged);
    EXPECT_EQ(report.scenario, "router-reboot");
    EXPECT_GT(report.totalUpdates, 0u);
}

TEST(Scenarios, PrefixesPerNodeScalesWork)
{
    topo::ScenarioOptions one;
    topo::ScenarioOptions three;
    three.prefixesPerNode = 3;
    auto small = topo::runAnnounceScenario(topo::Topology::line(4),
                                           "line", one);
    auto large = topo::runAnnounceScenario(topo::Topology::line(4),
                                           "line", three);
    EXPECT_TRUE(small.converged);
    EXPECT_TRUE(large.converged);
    EXPECT_EQ(large.totalTransactions, 3u * small.totalTransactions);
}

TEST(ConvergenceReport, JsonShape)
{
    topo::ConvergenceReport report = topo::runAnnounceScenario(
        topo::Topology::line(3), "line");
    std::string json = report.toJson();
    EXPECT_NE(json.find("\"benchmark\": \"topo_convergence\""),
              std::string::npos);
    EXPECT_NE(json.find("\"scenario\": \"announce\""),
              std::string::npos);
    EXPECT_NE(json.find("\"shape\": \"line\""), std::string::npos);
    EXPECT_NE(json.find("\"convergence_time_s\""), std::string::npos);
    EXPECT_NE(json.find("\"routers\""), std::string::npos);
    EXPECT_NE(json.find("\"tps\""), std::string::npos);
}

TEST(ConvergenceTracker, PhaseClockRestarts)
{
    topo::ConvergenceTracker tracker;
    bgp::UpdateStats stats;
    stats.locRibChanges = 1;
    tracker.onUpdateProcessed(0, stats, 500);
    EXPECT_DOUBLE_EQ(tracker.convergenceTimeSec(), 500e-9);

    tracker.markPhaseStart(1000);
    EXPECT_DOUBLE_EQ(tracker.convergenceTimeSec(), 0.0);
    tracker.onUpdateProcessed(0, stats, 1750);
    EXPECT_DOUBLE_EQ(tracker.convergenceTimeSec(), 750e-9);

    // Updates that change nothing do not extend convergence.
    bgp::UpdateStats noop;
    tracker.onUpdateProcessed(0, noop, 9000);
    EXPECT_DOUBLE_EQ(tracker.convergenceTimeSec(), 750e-9);
}

TEST(ConvergenceTracker, PathExplorationCounts)
{
    topo::ConvergenceTracker tracker;
    net::Prefix prefix = net::Prefix::fromString("192.0.2.0/24");

    bgp::UpdateMessage msg;
    msg.nlri.push_back(prefix);
    bgp::PathAttributes attrs;
    attrs.asPath = bgp::AsPath::sequence({100});
    msg.attributes = bgp::makeAttributes(attrs);
    tracker.onUpdateDelivered(0, msg, 10);
    tracker.onUpdateDelivered(0, msg, 20); // same path: not distinct

    bgp::PathAttributes longer;
    longer.asPath = bgp::AsPath::sequence({200, 100});
    msg.attributes = bgp::makeAttributes(longer);
    tracker.onUpdateDelivered(0, msg, 30);

    EXPECT_EQ(tracker.distinctPathsExplored(0, prefix), 2u);
    EXPECT_EQ(tracker.distinctPathsExplored(1, prefix), 0u);
    EXPECT_EQ(tracker.maxPathsExplored(), 2u);
    EXPECT_DOUBLE_EQ(tracker.meanPathsExplored(), 2.0);
    EXPECT_EQ(tracker.updatesDelivered(), 3u);
}
