/**
 * @file
 * Tests for the topology graph model and its generators.
 */

#include <gtest/gtest.h>

#include "net/logging.hh"
#include "topo/topology.hh"

using namespace bgpbench;
using topo::GenOptions;
using topo::Topology;

TEST(Topology, LineShape)
{
    Topology topo = Topology::line(4);
    EXPECT_EQ(topo.nodeCount(), 4u);
    EXPECT_EQ(topo.linkCount(), 3u);
    EXPECT_TRUE(topo.connected());
    EXPECT_EQ(topo.neighborsOf(0).size(), 1u);
    EXPECT_EQ(topo.neighborsOf(1).size(), 2u);
    // One AS per node by default, so every link is eBGP.
    for (size_t l = 0; l < topo.linkCount(); ++l)
        EXPECT_FALSE(topo.isIbgp(l));
}

TEST(Topology, RingShape)
{
    Topology topo = Topology::ring(5);
    EXPECT_EQ(topo.nodeCount(), 5u);
    EXPECT_EQ(topo.linkCount(), 5u);
    EXPECT_TRUE(topo.connected());
    for (size_t i = 0; i < 5; ++i)
        EXPECT_EQ(topo.neighborsOf(i).size(), 2u);
}

TEST(Topology, StarShape)
{
    Topology topo = Topology::star(6);
    EXPECT_EQ(topo.linkCount(), 5u);
    EXPECT_EQ(topo.neighborsOf(0).size(), 5u);
    for (size_t i = 1; i < 6; ++i)
        EXPECT_EQ(topo.neighborsOf(i).size(), 1u);
}

TEST(Topology, FullMeshShape)
{
    Topology topo = Topology::fullMesh(5);
    EXPECT_EQ(topo.linkCount(), 10u);
    EXPECT_TRUE(topo.connected());
    for (size_t i = 0; i < 5; ++i)
        EXPECT_EQ(topo.neighborsOf(i).size(), 4u);
}

TEST(Topology, DefaultNodeNumbering)
{
    GenOptions opts;
    opts.firstAs = 500;
    Topology topo = Topology::line(3, opts);
    EXPECT_EQ(topo.node(0).asn, 500);
    EXPECT_EQ(topo.node(2).asn, 502);
    EXPECT_EQ(topo.node(1).name, "r1");
    EXPECT_EQ(topo.node(1).routerId, 2u);
    EXPECT_NE(topo.node(0).address, topo.node(1).address);
}

TEST(Topology, IbgpDerivedFromAsNumbers)
{
    Topology topo = Topology::line(3);
    topo.node(1).asn = topo.node(0).asn;
    EXPECT_TRUE(topo.isIbgp(0));
    EXPECT_FALSE(topo.isIbgp(1));
}

TEST(Topology, BarabasiAlbertProperties)
{
    Topology topo = Topology::barabasiAlbert(30, 2, 7);
    EXPECT_EQ(topo.nodeCount(), 30u);
    // A 3-node seed line plus 2 links per further node.
    EXPECT_EQ(topo.linkCount(), 2u + 27u * 2u);
    EXPECT_TRUE(topo.connected());
    for (size_t i = 0; i < 30; ++i)
        EXPECT_GE(topo.neighborsOf(i).size(), 1u);
}

TEST(Topology, BarabasiAlbertDeterministicPerSeed)
{
    Topology a = Topology::barabasiAlbert(25, 2, 7);
    Topology b = Topology::barabasiAlbert(25, 2, 7);
    ASSERT_EQ(a.linkCount(), b.linkCount());
    for (size_t l = 0; l < a.linkCount(); ++l) {
        EXPECT_EQ(a.link(l).a.node, b.link(l).a.node);
        EXPECT_EQ(a.link(l).b.node, b.link(l).b.node);
    }

    Topology c = Topology::barabasiAlbert(25, 2, 8);
    bool differs = false;
    for (size_t l = 0; l < a.linkCount(); ++l) {
        differs = differs || a.link(l).a.node != c.link(l).a.node ||
                  a.link(l).b.node != c.link(l).b.node;
    }
    EXPECT_TRUE(differs);
}

TEST(Topology, ValidationRejectsBadInput)
{
    Topology topo = Topology::line(3);
    EXPECT_THROW(topo.addLink(0, 0, 0, 0.0), FatalError);
    EXPECT_THROW(topo.addLink(0, 9, 0, 0.0), FatalError);
    EXPECT_THROW(topo.node(9), FatalError);
    EXPECT_THROW(topo.link(9), FatalError);

    topo::NodeConfig bad;
    bad.routerId = 1;
    EXPECT_THROW(topo.addNode(bad), FatalError); // AS 0

    EXPECT_THROW(Topology::line(1), FatalError);
    EXPECT_THROW(Topology::ring(2), FatalError);
    EXPECT_THROW(Topology::barabasiAlbert(2, 2, 1), FatalError);
    EXPECT_THROW(Topology::barabasiAlbert(9, 0, 1), FatalError);
}
