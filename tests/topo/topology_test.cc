/**
 * @file
 * Tests for the topology graph model and its generators.
 */

#include <gtest/gtest.h>

#include "net/logging.hh"
#include "topo/topology.hh"

using namespace bgpbench;
using topo::GenOptions;
using topo::Topology;

TEST(Topology, LineShape)
{
    Topology topo = Topology::line(4);
    EXPECT_EQ(topo.nodeCount(), 4u);
    EXPECT_EQ(topo.linkCount(), 3u);
    EXPECT_TRUE(topo.connected());
    EXPECT_EQ(topo.neighborsOf(0).size(), 1u);
    EXPECT_EQ(topo.neighborsOf(1).size(), 2u);
    // One AS per node by default, so every link is eBGP.
    for (size_t l = 0; l < topo.linkCount(); ++l)
        EXPECT_FALSE(topo.isIbgp(l));
}

TEST(Topology, RingShape)
{
    Topology topo = Topology::ring(5);
    EXPECT_EQ(topo.nodeCount(), 5u);
    EXPECT_EQ(topo.linkCount(), 5u);
    EXPECT_TRUE(topo.connected());
    for (size_t i = 0; i < 5; ++i)
        EXPECT_EQ(topo.neighborsOf(i).size(), 2u);
}

TEST(Topology, StarShape)
{
    Topology topo = Topology::star(6);
    EXPECT_EQ(topo.linkCount(), 5u);
    EXPECT_EQ(topo.neighborsOf(0).size(), 5u);
    for (size_t i = 1; i < 6; ++i)
        EXPECT_EQ(topo.neighborsOf(i).size(), 1u);
}

TEST(Topology, FullMeshShape)
{
    Topology topo = Topology::fullMesh(5);
    EXPECT_EQ(topo.linkCount(), 10u);
    EXPECT_TRUE(topo.connected());
    for (size_t i = 0; i < 5; ++i)
        EXPECT_EQ(topo.neighborsOf(i).size(), 4u);
}

TEST(Topology, DefaultNodeNumbering)
{
    GenOptions opts;
    opts.firstAs = 500;
    Topology topo = Topology::line(3, opts);
    EXPECT_EQ(topo.node(0).asn, 500);
    EXPECT_EQ(topo.node(2).asn, 502);
    EXPECT_EQ(topo.node(1).name, "r1");
    EXPECT_EQ(topo.node(1).routerId, 2u);
    EXPECT_NE(topo.node(0).address, topo.node(1).address);
}

TEST(Topology, IbgpDerivedFromAsNumbers)
{
    Topology topo = Topology::line(3);
    topo.node(1).asn = topo.node(0).asn;
    EXPECT_TRUE(topo.isIbgp(0));
    EXPECT_FALSE(topo.isIbgp(1));
}

TEST(Topology, BarabasiAlbertProperties)
{
    Topology topo = Topology::barabasiAlbert(30, 2, 7);
    EXPECT_EQ(topo.nodeCount(), 30u);
    // A 3-node seed line plus 2 links per further node.
    EXPECT_EQ(topo.linkCount(), 2u + 27u * 2u);
    EXPECT_TRUE(topo.connected());
    for (size_t i = 0; i < 30; ++i)
        EXPECT_GE(topo.neighborsOf(i).size(), 1u);
}

TEST(Topology, BarabasiAlbertDeterministicPerSeed)
{
    Topology a = Topology::barabasiAlbert(25, 2, 7);
    Topology b = Topology::barabasiAlbert(25, 2, 7);
    ASSERT_EQ(a.linkCount(), b.linkCount());
    for (size_t l = 0; l < a.linkCount(); ++l) {
        EXPECT_EQ(a.link(l).a.node, b.link(l).a.node);
        EXPECT_EQ(a.link(l).b.node, b.link(l).b.node);
    }

    Topology c = Topology::barabasiAlbert(25, 2, 8);
    bool differs = false;
    for (size_t l = 0; l < a.linkCount(); ++l) {
        differs = differs || a.link(l).a.node != c.link(l).a.node ||
                  a.link(l).b.node != c.link(l).b.node;
    }
    EXPECT_TRUE(differs);
}

TEST(Topology, ValidationRejectsBadInput)
{
    Topology topo = Topology::line(3);
    EXPECT_THROW(topo.addLink(0, 0, 0, 0.0), FatalError);
    EXPECT_THROW(topo.addLink(0, 9, 0, 0.0), FatalError);
    EXPECT_THROW(topo.node(9), FatalError);
    EXPECT_THROW(topo.link(9), FatalError);

    topo::NodeConfig bad;
    bad.routerId = 1;
    EXPECT_THROW(topo.addNode(bad), FatalError); // AS 0

    EXPECT_THROW(Topology::line(1), FatalError);
    EXPECT_THROW(Topology::ring(2), FatalError);
    EXPECT_THROW(Topology::barabasiAlbert(2, 2, 1), FatalError);
    EXPECT_THROW(Topology::barabasiAlbert(9, 0, 1), FatalError);
}

TEST(Topology, ClosShapeAndLinkStructure)
{
    topo::ClosOptions opts;
    opts.pods = 2;
    opts.torsPerPod = 3;
    opts.aggsPerPod = 2;
    opts.spines = 4;
    Topology topo = Topology::clos(opts);

    // 4 spines + 2 pods x (2 aggs + 3 tors).
    EXPECT_EQ(topo.nodeCount(), 14u);
    // Per pod: every tor to every agg; every agg to every spine.
    EXPECT_EQ(topo.linkCount(), 2u * (3 * 2) + 2u * (2 * 4));
    EXPECT_TRUE(topo.connected());

    // Spines come first, then pod by pod: aggs before tors.
    EXPECT_EQ(topo.node(0).name, "spine0");
    EXPECT_EQ(topo.node(3).name, "spine3");
    EXPECT_EQ(topo.node(4).name, "p0-agg0");
    EXPECT_EQ(topo.node(6).name, "p0-tor0");
    EXPECT_EQ(topo.node(9).name, "p1-agg0");
    EXPECT_EQ(topo.node(13).name, "p1-tor2");

    // Every link crosses tiers, so the whole fabric is eBGP.
    for (size_t l = 0; l < topo.linkCount(); ++l)
        EXPECT_FALSE(topo.isIbgp(l));
}

TEST(Topology, ClosAsNumberingFollowsRfc7938)
{
    topo::ClosOptions opts;
    opts.pods = 2;
    opts.torsPerPod = 2;
    opts.aggsPerPod = 2;
    opts.spines = 2;
    opts.base.firstAs = 64600;
    Topology topo = Topology::clos(opts);

    // All spines share one AS.
    EXPECT_EQ(topo.node(0).asn, 64600);
    EXPECT_EQ(topo.node(1).asn, 64600);
    // Each pod's aggs share the per-pod AS.
    EXPECT_EQ(topo.node(2).asn, 64601); // p0-agg0
    EXPECT_EQ(topo.node(3).asn, 64601); // p0-agg1
    EXPECT_EQ(topo.node(6).asn, 64602); // p1-agg0
    EXPECT_EQ(topo.node(7).asn, 64602); // p1-agg1
    // Every tor gets its own AS, numbered after the pod ASes.
    EXPECT_EQ(topo.node(4).asn, 64603); // p0-tor0
    EXPECT_EQ(topo.node(5).asn, 64604); // p0-tor1
    EXPECT_EQ(topo.node(8).asn, 64605); // p1-tor0
    EXPECT_EQ(topo.node(9).asn, 64606); // p1-tor1

    // Router ids and addresses stay unique across the fabric.
    for (size_t i = 0; i < topo.nodeCount(); ++i)
        for (size_t j = i + 1; j < topo.nodeCount(); ++j) {
            EXPECT_NE(topo.node(i).routerId, topo.node(j).routerId);
            EXPECT_NE(topo.node(i).address, topo.node(j).address);
        }
}

TEST(Topology, ClosAttachesTierPoliciesToLinkEnds)
{
    topo::ClosOptions opts;
    opts.torImport = bgp::makeLocalPrefForAsPolicy(64999, 200);
    opts.aggExport =
        bgp::makeRejectPrefixPolicy(net::Prefix::fromString(
            "240.0.0.0/4"));
    Topology topo = Topology::clos(opts);

    size_t tor_imports = 0, agg_exports = 0;
    for (size_t l = 0; l < topo.linkCount(); ++l) {
        const topo::Link &link = topo.link(l);
        if (!link.a.importPolicy.empty())
            ++tor_imports; // lower tier sits on end a
        if (!link.b.exportPolicy.empty() &&
            topo.node(link.b.node).name.find("agg") !=
                std::string::npos)
            ++agg_exports;
    }
    // Every tor->agg link carries the tor import policy on its a end;
    // the agg export policy rides the same links' b ends.
    EXPECT_EQ(tor_imports, 2u * (2 * 2));
    EXPECT_EQ(agg_exports, 2u * (2 * 2));
}

TEST(Topology, ClosFromSizeSpendsTheNodeBudget)
{
    Topology topo = Topology::closFromSize(16);
    EXPECT_EQ(topo.nodeCount(), 16u);
    EXPECT_TRUE(topo.connected());
    // Fixed 2-spine / 2x2-agg frame; the remainder becomes tors.
    EXPECT_EQ(topo.node(0).name, "spine0");
    size_t tors = 0;
    for (size_t i = 0; i < topo.nodeCount(); ++i)
        if (topo.node(i).name.find("tor") != std::string::npos)
            ++tors;
    EXPECT_EQ(tors, 10u);
}

TEST(Topology, ClosRejectsDegenerateTiers)
{
    topo::ClosOptions no_spines;
    no_spines.spines = 0;
    EXPECT_THROW(Topology::clos(no_spines), FatalError);
    topo::ClosOptions no_pods;
    no_pods.pods = 0;
    EXPECT_THROW(Topology::clos(no_pods), FatalError);
    EXPECT_THROW(Topology::closFromSize(7), FatalError);
}
