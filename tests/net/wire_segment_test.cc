/**
 * @file
 * Tests for the shared wire-segment abstraction and its buffer pool:
 * immutability-by-sharing semantics, size-classed recycling, the
 * process-wide liveness census, and the ablation switch.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "net/wire_segment.hh"

using namespace bgpbench::net;

namespace
{

/** RAII guard: restore the sharing switch whatever the test does. */
struct SharingGuard
{
    bool saved = segmentSharingEnabled();
    ~SharingGuard() { setSegmentSharing(saved); }
};

WireSegmentPtr
sealBytes(BufferPool &pool, std::vector<uint8_t> bytes)
{
    ByteWriter w = pool.writer(bytes.size());
    for (uint8_t b : bytes)
        w.writeU8(b);
    return pool.seal(std::move(w));
}

} // namespace

TEST(WireSegment, SealPreservesBytes)
{
    BufferPool pool;
    auto seg = sealBytes(pool, {1, 2, 3, 4, 5});
    ASSERT_NE(seg, nullptr);
    EXPECT_EQ(seg->size(), 5u);
    EXPECT_EQ(seg->bytes()[0], 1);
    EXPECT_EQ(seg->bytes()[4], 5);
}

TEST(WireSegment, WrapMovesVector)
{
    BufferPool pool;
    std::vector<uint8_t> bytes(300, 0xab);
    const uint8_t *data = bytes.data();
    auto seg = pool.wrap(std::move(bytes));
    EXPECT_EQ(seg->data(), data); // moved, not copied
    EXPECT_EQ(seg->size(), 300u);
}

TEST(WireSegment, ContentEqualityIsBytewise)
{
    BufferPool pool;
    auto a = sealBytes(pool, {9, 8, 7});
    auto b = sealBytes(pool, {9, 8, 7});
    auto c = sealBytes(pool, {9, 8, 6});
    EXPECT_NE(a, b);       // distinct identities
    EXPECT_TRUE(*a == *b); // same content
    EXPECT_FALSE(*a == *c);
}

TEST(WireSegment, SharedSegmentSurvivesManyReleases)
{
    BufferPool pool;
    auto seg = sealBytes(pool, {1, 2, 3});
    std::vector<WireSegmentPtr> holders(100, seg);
    holders.clear();
    EXPECT_EQ(seg->size(), 3u); // sole owner again, bytes intact
}

TEST(BufferPool, RecyclesThroughGlobalPool)
{
    SharingGuard guard;
    setSegmentSharing(true);
    auto &pool = BufferPool::global();
    pool.trim();
    pool.resetStats();

    // Seal and release through the global pool: the dying segment's
    // buffer must come back for the next acquisition.
    {
        auto seg = sealBytes(pool, std::vector<uint8_t>(100, 0x55));
    }
    auto mid = pool.stats();
    EXPECT_GE(mid.pooledBuffers, 1u);

    // A buffer of capacity ~100 parks in the 64-byte floor class, so
    // it serves requests of up to 64 bytes (the capacity guarantee is
    // per class, not per buffer).
    auto seg2 = sealBytes(pool, std::vector<uint8_t>(60, 0x66));
    auto after = pool.stats();
    EXPECT_GE(after.hits, 1u);
    EXPECT_EQ(seg2->size(), 60u);
}

TEST(BufferPool, OversizedBuffersAreNotPooled)
{
    SharingGuard guard;
    setSegmentSharing(true);
    auto &pool = BufferPool::global();
    pool.trim();

    {
        auto seg =
            sealBytes(pool, std::vector<uint8_t>(16 * 1024, 0x11));
    }
    // 16 KiB exceeds the largest (4096-byte) size class.
    EXPECT_EQ(pool.stats().pooledBuffers, 0u);
}

TEST(BufferPool, AblationSwitchDisablesRecycling)
{
    SharingGuard guard;
    setSegmentSharing(false);
    auto &pool = BufferPool::global();
    pool.trim();
    pool.resetStats();

    {
        auto seg = sealBytes(pool, std::vector<uint8_t>(100, 0x22));
    }
    auto s = pool.stats();
    EXPECT_EQ(s.pooledBuffers, 0u);
    EXPECT_EQ(s.hits, 0u);
}

TEST(BufferPool, OutstandingCensusTracksLiveSegments)
{
    auto &pool = BufferPool::global();
    pool.resetStats();
    uint64_t base = pool.stats().outstanding;

    auto a = sealBytes(pool, {1});
    auto b = sealBytes(pool, {2});
    EXPECT_EQ(pool.stats().outstanding, base + 2);
    EXPECT_GE(pool.stats().peakOutstanding, base + 2);

    a.reset();
    b.reset();
    EXPECT_EQ(pool.stats().outstanding, base);
    // The high-water mark survives the releases.
    EXPECT_GE(pool.stats().peakOutstanding, base + 2);
}

TEST(BufferPool, NoteSharedAccumulatesDedup)
{
    auto &pool = BufferPool::global();
    pool.resetStats();
    pool.noteShared(100);
    pool.noteShared(23);
    auto s = pool.stats();
    EXPECT_EQ(s.sharedEncodes, 2u);
    EXPECT_EQ(s.bytesDeduplicated, 123u);
}

TEST(BufferPool, SegmentsMayDieOnAnotherThread)
{
    // The cross-shard mailbox case: a segment sealed here is released
    // by a different thread. The census must stay balanced and the
    // buffer must not be recycled into a dead pool.
    auto &pool = BufferPool::global();
    uint64_t base = pool.stats().outstanding;

    auto seg = sealBytes(pool, std::vector<uint8_t>(200, 0x33));
    std::thread reaper(
        [moved = std::move(seg)]() mutable { moved.reset(); });
    reaper.join();

    EXPECT_EQ(pool.stats().outstanding, base);
}

TEST(BufferPool, ManyThreadsSealAndReleaseConcurrently)
{
    auto &pool = BufferPool::global();
    uint64_t base = pool.stats().outstanding;

    std::vector<std::thread> workers;
    for (int t = 0; t < 4; ++t) {
        workers.emplace_back([]() {
            auto &mine = BufferPool::global();
            for (int i = 0; i < 1000; ++i) {
                auto seg = sealBytes(
                    mine, std::vector<uint8_t>(64 + i % 512, 0x44));
                auto copy = seg; // shared refcount traffic
                copy.reset();
                seg.reset();
            }
        });
    }
    for (auto &w : workers)
        w.join();

    EXPECT_EQ(pool.stats().outstanding, base);
}
