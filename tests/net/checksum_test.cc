/**
 * @file
 * Tests for the Internet checksum (RFC 1071 / RFC 1624).
 */

#include <gtest/gtest.h>

#include "net/checksum.hh"
#include "workload/rng.hh"

using namespace bgpbench;

TEST(Checksum, EmptyBufferIsAllOnes)
{
    EXPECT_EQ(net::checksum({}), 0xffff);
}

TEST(Checksum, KnownVector)
{
    // Classic example from RFC 1071 section 3: words 0x0001, 0xf203,
    // 0xf4f5, 0xf6f7 sum to 0xddf2 before complement.
    std::vector<uint8_t> data = {0x00, 0x01, 0xf2, 0x03,
                                 0xf4, 0xf5, 0xf6, 0xf7};
    EXPECT_EQ(net::checksum(data), uint16_t(~0xddf2u));
}

TEST(Checksum, OddLengthPadsWithZero)
{
    std::vector<uint8_t> even = {0x12, 0x34, 0x56, 0x00};
    std::vector<uint8_t> odd = {0x12, 0x34, 0x56};
    EXPECT_EQ(net::checksum(even), net::checksum(odd));
}

TEST(Checksum, BufferWithEmbeddedChecksumVerifiesToZero)
{
    workload::Rng rng(3);
    for (int trial = 0; trial < 100; ++trial) {
        std::vector<uint8_t> data(20);
        for (auto &b : data)
            b = uint8_t(rng.next());
        // Clear a 16-bit checksum field at offset 10, compute, embed.
        data[10] = data[11] = 0;
        uint16_t sum = net::checksum(data);
        data[10] = uint8_t(sum >> 8);
        data[11] = uint8_t(sum);
        EXPECT_EQ(net::checksum(data), 0);
    }
}

TEST(Checksum, IncrementalUpdateMatchesRecomputation)
{
    workload::Rng rng(5);
    for (int trial = 0; trial < 200; ++trial) {
        std::vector<uint8_t> data(20);
        for (auto &b : data)
            b = uint8_t(rng.next());
        data[10] = data[11] = 0;
        uint16_t sum = net::checksum(data);
        data[10] = uint8_t(sum >> 8);
        data[11] = uint8_t(sum);

        // Modify the 16-bit word at offset 8 (TTL+protocol in an IP
        // header) and update incrementally.
        uint16_t old_word = uint16_t((data[8] << 8) | data[9]);
        uint16_t new_word = uint16_t(rng.next());
        data[8] = uint8_t(new_word >> 8);
        data[9] = uint8_t(new_word);

        uint16_t incremental =
            net::checksumAdjust(sum, old_word, new_word);

        data[10] = data[11] = 0;
        uint16_t recomputed = net::checksum(data);

        EXPECT_EQ(incremental, recomputed)
            << "trial " << trial << " old=" << old_word
            << " new=" << new_word;
    }
}

TEST(Checksum, AdjustIsInvolution)
{
    // Changing a word and changing it back restores the checksum.
    uint16_t sum = 0x1a2b;
    uint16_t adjusted = net::checksumAdjust(sum, 0x4001, 0x3f01);
    uint16_t restored = net::checksumAdjust(adjusted, 0x3f01, 0x4001);
    EXPECT_EQ(restored, sum);
}
