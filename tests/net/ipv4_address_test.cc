/**
 * @file
 * Unit tests for net::Ipv4Address.
 */

#include <gtest/gtest.h>

#include "net/ipv4_address.hh"
#include "net/logging.hh"

using namespace bgpbench;
using net::Ipv4Address;

TEST(Ipv4Address, DefaultIsZero)
{
    Ipv4Address addr;
    EXPECT_EQ(addr.toUint32(), 0u);
    EXPECT_TRUE(addr.isZero());
    EXPECT_EQ(addr.toString(), "0.0.0.0");
}

TEST(Ipv4Address, OctetConstruction)
{
    Ipv4Address addr(192, 168, 1, 2);
    EXPECT_EQ(addr.toUint32(), 0xc0a80102u);
    EXPECT_EQ(addr.octet(0), 192);
    EXPECT_EQ(addr.octet(1), 168);
    EXPECT_EQ(addr.octet(2), 1);
    EXPECT_EQ(addr.octet(3), 2);
}

TEST(Ipv4Address, RoundTripThroughString)
{
    const char *cases[] = {"0.0.0.0", "1.2.3.4", "10.0.0.1",
                           "172.16.254.3", "192.168.100.200",
                           "255.255.255.255"};
    for (const char *text : cases) {
        auto addr = Ipv4Address::parse(text);
        ASSERT_TRUE(addr.has_value()) << text;
        EXPECT_EQ(addr->toString(), text);
    }
}

TEST(Ipv4Address, ParseRejectsMalformed)
{
    const char *cases[] = {"",        "1.2.3",       "1.2.3.4.5",
                           "256.1.1.1", "1.2.3.256", "a.b.c.d",
                           "1..2.3",  "1.2.3.4 ",    " 1.2.3.4",
                           "1.2.3.-4", "01.2.3.4.5", "1,2,3,4",
                           "1.2.3.4/24", "1.2.3.0444"};
    for (const char *text : cases)
        EXPECT_FALSE(Ipv4Address::parse(text).has_value()) << text;
}

TEST(Ipv4Address, ParseAcceptsLeadingZeroDigits)
{
    // "010" is three digits with value 10; accepted like inet_pton
    // would for zero-padded decimal.
    auto addr = Ipv4Address::parse("010.001.000.009");
    ASSERT_TRUE(addr.has_value());
    EXPECT_EQ(*addr, Ipv4Address(10, 1, 0, 9));
}

TEST(Ipv4Address, FromStringThrowsOnBadInput)
{
    EXPECT_THROW(Ipv4Address::fromString("999.0.0.1"), FatalError);
    EXPECT_EQ(Ipv4Address::fromString("8.8.8.8"),
              Ipv4Address(8, 8, 8, 8));
}

TEST(Ipv4Address, BitAccessMsbFirst)
{
    Ipv4Address addr(0x80000001u);
    EXPECT_TRUE(addr.bit(0));
    for (int b = 1; b < 31; ++b)
        EXPECT_FALSE(addr.bit(b)) << b;
    EXPECT_TRUE(addr.bit(31));
}

TEST(Ipv4Address, Ordering)
{
    EXPECT_LT(Ipv4Address(1, 0, 0, 0), Ipv4Address(2, 0, 0, 0));
    EXPECT_LT(Ipv4Address(10, 0, 0, 1), Ipv4Address(10, 0, 0, 2));
    EXPECT_EQ(Ipv4Address(10, 0, 0, 1), Ipv4Address(0x0a000001u));
}

TEST(Ipv4Address, MaskForLength)
{
    EXPECT_EQ(net::maskForLength(0), 0u);
    EXPECT_EQ(net::maskForLength(8), 0xff000000u);
    EXPECT_EQ(net::maskForLength(24), 0xffffff00u);
    EXPECT_EQ(net::maskForLength(32), 0xffffffffu);
    EXPECT_EQ(net::maskForLength(1), 0x80000000u);
    EXPECT_EQ(net::maskForLength(31), 0xfffffffeu);
}
