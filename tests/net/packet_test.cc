/**
 * @file
 * Tests for the IPv4 header codec and DataPacket helpers.
 */

#include <gtest/gtest.h>

#include "net/checksum.hh"
#include "net/packet.hh"

using namespace bgpbench;
using net::DataPacket;
using net::Ipv4Address;
using net::Ipv4Header;

TEST(Ipv4Header, EncodeDecodeRoundTrip)
{
    Ipv4Header hdr;
    hdr.ttl = 17;
    hdr.protocol = 6;
    hdr.totalLength = 1500;
    hdr.source = Ipv4Address(10, 0, 0, 1);
    hdr.destination = Ipv4Address(192, 168, 10, 20);

    auto wire = hdr.encode();
    auto decoded = Ipv4Header::decode(wire);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->ttl, 17);
    EXPECT_EQ(decoded->protocol, 6);
    EXPECT_EQ(decoded->totalLength, 1500);
    EXPECT_EQ(decoded->source, hdr.source);
    EXPECT_EQ(decoded->destination, hdr.destination);
}

TEST(Ipv4Header, EncodedChecksumVerifies)
{
    Ipv4Header hdr;
    hdr.source = Ipv4Address(1, 2, 3, 4);
    hdr.destination = Ipv4Address(5, 6, 7, 8);
    auto wire = hdr.encode();
    EXPECT_EQ(net::checksum(std::span<const uint8_t>(wire)), 0);
}

TEST(Ipv4Header, DecodeRejectsShortBuffer)
{
    std::vector<uint8_t> wire(10, 0);
    EXPECT_FALSE(Ipv4Header::decode(wire).has_value());
}

TEST(Ipv4Header, DecodeRejectsWrongVersion)
{
    Ipv4Header hdr;
    auto wire = hdr.encode();
    std::vector<uint8_t> bytes(wire.begin(), wire.end());
    bytes[0] = 0x65; // IPv6 version nibble
    EXPECT_FALSE(Ipv4Header::decode(bytes).has_value());
    bytes[0] = 0x46; // IPv4 but IHL 6 (options): unsupported
    EXPECT_FALSE(Ipv4Header::decode(bytes).has_value());
}

TEST(DataPacket, MakeDataPacketIsValid)
{
    DataPacket pkt = net::makeDataPacket(Ipv4Address(10, 0, 0, 1),
                                         Ipv4Address(10, 0, 0, 2),
                                         1000);
    EXPECT_EQ(pkt.sizeBytes, 1000u);
    EXPECT_EQ(pkt.header.ttl, 64);
    EXPECT_TRUE(pkt.checksumValid());
}

TEST(DataPacket, ChecksumInvalidAfterMutation)
{
    DataPacket pkt = net::makeDataPacket(Ipv4Address(10, 0, 0, 1),
                                         Ipv4Address(10, 0, 0, 2),
                                         100);
    pkt.header.ttl -= 1;
    EXPECT_FALSE(pkt.checksumValid());
    pkt.refreshChecksum();
    EXPECT_TRUE(pkt.checksumValid());
}

TEST(DataPacket, MinimumSizeIsHeader)
{
    DataPacket pkt = net::makeDataPacket(Ipv4Address(1, 1, 1, 1),
                                         Ipv4Address(2, 2, 2, 2), 4);
    EXPECT_EQ(pkt.sizeBytes, Ipv4Header::headerBytes);
}

TEST(DataPacket, LargePacketLengthFieldSaturates)
{
    DataPacket pkt = net::makeDataPacket(Ipv4Address(1, 1, 1, 1),
                                         Ipv4Address(2, 2, 2, 2),
                                         100000);
    EXPECT_EQ(pkt.sizeBytes, 100000u);
    EXPECT_EQ(pkt.header.totalLength, 0xffff);
    EXPECT_TRUE(pkt.checksumValid());
}
