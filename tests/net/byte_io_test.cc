/**
 * @file
 * Unit and property tests for the big-endian serialisation layer.
 */

#include <gtest/gtest.h>

#include "net/byte_io.hh"
#include "workload/rng.hh"

using namespace bgpbench;
using net::ByteReader;
using net::ByteWriter;

TEST(ByteWriter, WritesBigEndian)
{
    ByteWriter w;
    w.writeU8(0x01);
    w.writeU16(0x0203);
    w.writeU32(0x04050607);
    ASSERT_EQ(w.size(), 7u);
    const auto &b = w.bytes();
    EXPECT_EQ(b[0], 0x01);
    EXPECT_EQ(b[1], 0x02);
    EXPECT_EQ(b[2], 0x03);
    EXPECT_EQ(b[3], 0x04);
    EXPECT_EQ(b[4], 0x05);
    EXPECT_EQ(b[5], 0x06);
    EXPECT_EQ(b[6], 0x07);
}

TEST(ByteWriter, PatchU16)
{
    ByteWriter w;
    w.writeU16(0);
    w.writeU8(0xaa);
    w.patchU16(0, 0xbeef);
    EXPECT_EQ(w.bytes()[0], 0xbe);
    EXPECT_EQ(w.bytes()[1], 0xef);
    EXPECT_EQ(w.bytes()[2], 0xaa);
}

TEST(ByteWriter, FillAndBytes)
{
    ByteWriter w;
    w.writeFill(16, 0xff);
    EXPECT_EQ(w.size(), 16u);
    for (uint8_t b : w.bytes())
        EXPECT_EQ(b, 0xff);
}

TEST(ByteReader, ReadsWhatWriterWrote)
{
    ByteWriter w;
    w.writeU32(0xdeadbeef);
    w.writeU16(0x1234);
    w.writeU8(0x56);
    w.writeAddress(net::Ipv4Address(10, 1, 2, 3));

    auto bytes = w.take();
    ByteReader r(bytes);
    EXPECT_EQ(r.readU32(), 0xdeadbeefu);
    EXPECT_EQ(r.readU16(), 0x1234);
    EXPECT_EQ(r.readU8(), 0x56);
    EXPECT_EQ(r.readAddress(), net::Ipv4Address(10, 1, 2, 3));
    EXPECT_TRUE(r.ok());
    EXPECT_TRUE(r.atEnd());
}

TEST(ByteReader, OverrunSetsStickyError)
{
    std::vector<uint8_t> bytes = {1, 2};
    ByteReader r(bytes);
    EXPECT_EQ(r.readU32(), 0u);
    EXPECT_FALSE(r.ok());
    // Sticky: further reads stay zero, no crash.
    EXPECT_EQ(r.readU8(), 0u);
    EXPECT_EQ(r.remaining(), 0u);
    EXPECT_FALSE(r.atEnd());
}

TEST(ByteReader, ReadBytesExactBoundary)
{
    std::vector<uint8_t> bytes = {1, 2, 3, 4};
    ByteReader r(bytes);
    auto first = r.readBytes(4);
    ASSERT_EQ(first.size(), 4u);
    EXPECT_TRUE(r.ok());
    EXPECT_TRUE(r.atEnd());
    auto extra = r.readBytes(1);
    EXPECT_TRUE(extra.empty());
    EXPECT_FALSE(r.ok());
}

TEST(ByteReader, SubReaderScopesLength)
{
    std::vector<uint8_t> bytes = {0xaa, 0xbb, 0xcc, 0xdd};
    ByteReader r(bytes);
    ByteReader sub = r.subReader(2);
    EXPECT_EQ(sub.readU8(), 0xaa);
    EXPECT_EQ(sub.readU8(), 0xbb);
    EXPECT_TRUE(sub.atEnd());
    // Parent cursor advanced past the sub-range.
    EXPECT_EQ(r.readU8(), 0xcc);
}

TEST(ByteReader, SubReaderBeyondEndFails)
{
    std::vector<uint8_t> bytes = {1};
    ByteReader r(bytes);
    ByteReader sub = r.subReader(5);
    EXPECT_FALSE(r.ok());
    EXPECT_FALSE(sub.ok());
}

TEST(ByteReader, SkipAdvances)
{
    std::vector<uint8_t> bytes = {1, 2, 3};
    ByteReader r(bytes);
    r.skip(2);
    EXPECT_EQ(r.readU8(), 3);
    EXPECT_TRUE(r.atEnd());
}

TEST(ByteIo, ToHex)
{
    std::vector<uint8_t> bytes = {0x00, 0x0f, 0xa5, 0xff};
    EXPECT_EQ(net::toHex(bytes), "000fa5ff");
    EXPECT_EQ(net::toHex({}), "");
}

/** Property: any sequence of typed writes reads back identically. */
TEST(ByteIoProperty, RandomRoundTrip)
{
    workload::Rng rng(21);
    for (int trial = 0; trial < 200; ++trial) {
        ByteWriter w;
        std::vector<int> kinds;
        std::vector<uint64_t> values;
        int fields = int(rng.range(1, 30));
        for (int i = 0; i < fields; ++i) {
            int kind = int(rng.range(0, 2));
            uint64_t v = rng.next();
            kinds.push_back(kind);
            switch (kind) {
              case 0:
                values.push_back(uint8_t(v));
                w.writeU8(uint8_t(v));
                break;
              case 1:
                values.push_back(uint16_t(v));
                w.writeU16(uint16_t(v));
                break;
              default:
                values.push_back(uint32_t(v));
                w.writeU32(uint32_t(v));
                break;
            }
        }

        auto bytes = w.take();
        ByteReader r(bytes);
        for (int i = 0; i < fields; ++i) {
            switch (kinds[size_t(i)]) {
              case 0:
                EXPECT_EQ(r.readU8(), values[size_t(i)]);
                break;
              case 1:
                EXPECT_EQ(r.readU16(), values[size_t(i)]);
                break;
              default:
                EXPECT_EQ(r.readU32(), values[size_t(i)]);
                break;
            }
        }
        EXPECT_TRUE(r.atEnd());
    }
}
