/**
 * @file
 * Unit and property tests for net::Prefix.
 */

#include <gtest/gtest.h>

#include <unordered_set>

#include "net/logging.hh"
#include "net/prefix.hh"
#include "workload/rng.hh"

using namespace bgpbench;
using net::Ipv4Address;
using net::Prefix;

TEST(Prefix, DefaultIsDefaultRoute)
{
    Prefix p;
    EXPECT_EQ(p.length(), 0);
    EXPECT_TRUE(p.address().isZero());
    EXPECT_EQ(p.toString(), "0.0.0.0/0");
    EXPECT_TRUE(p.contains(Ipv4Address(1, 2, 3, 4)));
}

TEST(Prefix, CanonicalisesHostBits)
{
    Prefix p(Ipv4Address(10, 1, 2, 3), 24);
    EXPECT_EQ(p.address(), Ipv4Address(10, 1, 2, 0));
    EXPECT_EQ(p.toString(), "10.1.2.0/24");

    Prefix host(Ipv4Address(10, 1, 2, 3), 32);
    EXPECT_EQ(host.address(), Ipv4Address(10, 1, 2, 3));
}

TEST(Prefix, EqualityAfterCanonicalisation)
{
    EXPECT_EQ(Prefix(Ipv4Address(10, 1, 2, 3), 24),
              Prefix(Ipv4Address(10, 1, 2, 200), 24));
    EXPECT_NE(Prefix(Ipv4Address(10, 1, 2, 0), 24),
              Prefix(Ipv4Address(10, 1, 2, 0), 25));
}

TEST(Prefix, Contains)
{
    Prefix p = Prefix::fromString("192.168.0.0/16");
    EXPECT_TRUE(p.contains(Ipv4Address(192, 168, 0, 1)));
    EXPECT_TRUE(p.contains(Ipv4Address(192, 168, 255, 255)));
    EXPECT_FALSE(p.contains(Ipv4Address(192, 169, 0, 0)));
    EXPECT_FALSE(p.contains(Ipv4Address(10, 0, 0, 1)));
}

TEST(Prefix, Covers)
{
    Prefix wide = Prefix::fromString("10.0.0.0/8");
    Prefix narrow = Prefix::fromString("10.1.0.0/16");
    EXPECT_TRUE(wide.covers(narrow));
    EXPECT_FALSE(narrow.covers(wide));
    EXPECT_TRUE(wide.covers(wide));
    EXPECT_FALSE(wide.covers(Prefix::fromString("11.0.0.0/16")));
}

TEST(Prefix, ParseRoundTrip)
{
    const char *cases[] = {"0.0.0.0/0", "10.0.0.0/8", "10.1.2.0/24",
                           "192.168.1.128/25", "1.2.3.4/32"};
    for (const char *text : cases) {
        auto p = Prefix::parse(text);
        ASSERT_TRUE(p.has_value()) << text;
        EXPECT_EQ(p->toString(), text);
    }
}

TEST(Prefix, ParseRejectsMalformed)
{
    const char *cases[] = {"",          "10.0.0.0",   "10.0.0.0/",
                           "10.0.0.0/33", "10.0.0.0/-1", "/24",
                           "10.0.0/24", "10.0.0.0/2 4", "10.0.0.0/s"};
    for (const char *text : cases)
        EXPECT_FALSE(Prefix::parse(text).has_value()) << text;
}

TEST(Prefix, FromStringThrows)
{
    EXPECT_THROW(Prefix::fromString("bogus"), FatalError);
}

TEST(Prefix, WireOctets)
{
    EXPECT_EQ(Prefix::fromString("0.0.0.0/0").wireOctets(), 0);
    EXPECT_EQ(Prefix::fromString("10.0.0.0/7").wireOctets(), 1);
    EXPECT_EQ(Prefix::fromString("10.0.0.0/8").wireOctets(), 1);
    EXPECT_EQ(Prefix::fromString("10.0.0.0/9").wireOctets(), 2);
    EXPECT_EQ(Prefix::fromString("10.1.0.0/16").wireOctets(), 2);
    EXPECT_EQ(Prefix::fromString("10.1.2.0/24").wireOctets(), 3);
    EXPECT_EQ(Prefix::fromString("10.1.2.3/32").wireOctets(), 4);
}

TEST(Prefix, HashDistinguishesLengths)
{
    std::unordered_set<Prefix> set;
    set.insert(Prefix::fromString("10.0.0.0/8"));
    set.insert(Prefix::fromString("10.0.0.0/16"));
    set.insert(Prefix::fromString("10.0.0.0/24"));
    EXPECT_EQ(set.size(), 3u);
    EXPECT_TRUE(set.count(Prefix::fromString("10.0.0.0/16")));
}

/** Property: an address is contained iff masking it yields the net. */
TEST(PrefixProperty, ContainsMatchesMaskArithmetic)
{
    workload::Rng rng(7);
    for (int i = 0; i < 2000; ++i) {
        int len = int(rng.range(0, 32));
        Ipv4Address net(uint32_t(rng.next()));
        Ipv4Address probe(uint32_t(rng.next()));
        Prefix p(net, len);
        bool expected = (probe.toUint32() & net::maskForLength(len)) ==
                        p.address().toUint32();
        EXPECT_EQ(p.contains(probe), expected)
            << p.toString() << " vs " << probe.toString();
    }
}

/** Property: covers() is reflexive and antisymmetric w.r.t. length. */
TEST(PrefixProperty, CoversIsPartialOrder)
{
    workload::Rng rng(11);
    for (int i = 0; i < 1000; ++i) {
        Prefix a(Ipv4Address(uint32_t(rng.next())),
                 int(rng.range(0, 32)));
        Prefix b(Ipv4Address(uint32_t(rng.next())),
                 int(rng.range(0, 32)));
        EXPECT_TRUE(a.covers(a));
        if (a.covers(b) && b.covers(a)) {
            EXPECT_EQ(a, b);
        }
        // Transitivity through a third prefix derived from b.
        Prefix c(b.address(), std::min(32, b.length() + 4));
        if (a.covers(b)) {
            EXPECT_TRUE(a.covers(c));
        }
    }
}
