/**
 * @file
 * Tests of the generic net::LpmTrie over non-owning route views: the
 * trie stores indexes/pointers into an immutable route array instead
 * of owning routes, which is how RIB snapshots index their tables.
 */

#include <gtest/gtest.h>

#include "net/lpm_trie.hh"
#include "net/prefix.hh"

using namespace bgpbench;

namespace
{

net::Prefix
pfx(const std::string &text)
{
    return net::Prefix::fromString(text);
}

net::Ipv4Address
addr(const std::string &text)
{
    return net::Ipv4Address::fromString(text);
}

/** A route record the trie points into but does not own. */
struct RouteView
{
    net::Prefix prefix;
    int tag = 0;
};

} // namespace

TEST(LpmTrieView, DefaultRouteCatchesEverything)
{
    net::LpmTrie<int> trie;
    trie.insert(pfx("0.0.0.0/0"), 1);
    trie.insert(pfx("10.0.0.0/8"), 2);

    const int *hit = trie.lookup(addr("192.168.1.1"));
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(*hit, 1);

    hit = trie.lookup(addr("10.1.2.3"));
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(*hit, 2);

    // Removing the default exposes true misses again.
    EXPECT_TRUE(trie.remove(pfx("0.0.0.0/0")));
    EXPECT_EQ(trie.lookup(addr("192.168.1.1")), nullptr);
}

TEST(LpmTrieView, ExactMatchDistinguishesLengths)
{
    net::LpmTrie<int> trie;
    trie.insert(pfx("10.0.0.0/8"), 8);
    trie.insert(pfx("10.0.0.0/16"), 16);
    trie.insert(pfx("10.0.0.0/24"), 24);

    const int *exact = trie.exact(pfx("10.0.0.0/16"));
    ASSERT_NE(exact, nullptr);
    EXPECT_EQ(*exact, 16);

    // Same address, unregistered length: exact() must miss even
    // though lookup() would match a shorter covering prefix.
    EXPECT_EQ(trie.exact(pfx("10.0.0.0/20")), nullptr);
    EXPECT_EQ(trie.exact(pfx("11.0.0.0/8")), nullptr);
}

TEST(LpmTrieView, NestedPrefixShadowing)
{
    net::LpmTrie<int> trie;
    trie.insert(pfx("10.0.0.0/8"), 8);
    trie.insert(pfx("10.1.0.0/16"), 16);
    trie.insert(pfx("10.1.1.0/24"), 24);

    // The most specific covering prefix wins at each depth.
    EXPECT_EQ(*trie.lookup(addr("10.1.1.7")), 24);
    EXPECT_EQ(*trie.lookup(addr("10.1.2.7")), 16);
    EXPECT_EQ(*trie.lookup(addr("10.2.0.1")), 8);

    // Removing the middle prefix re-exposes the /8 for its range
    // without touching the deeper /24.
    EXPECT_TRUE(trie.remove(pfx("10.1.0.0/16")));
    EXPECT_EQ(*trie.lookup(addr("10.1.2.7")), 8);
    EXPECT_EQ(*trie.lookup(addr("10.1.1.7")), 24);
}

TEST(LpmTrieView, NonOwningPointerValues)
{
    // The snapshot pattern: an immutable route array plus a trie of
    // pointers into it. The trie never copies or frees the records.
    const RouteView routes[] = {
        {pfx("0.0.0.0/0"), 100},
        {pfx("172.16.0.0/12"), 200},
        {pfx("172.16.5.0/24"), 300},
    };
    net::LpmTrie<const RouteView *> trie;
    for (const RouteView &route : routes)
        trie.insert(route.prefix, &route);
    EXPECT_EQ(trie.size(), 3u);

    const RouteView *const *hit = trie.lookup(addr("172.16.5.9"));
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(*hit, &routes[2]);
    EXPECT_EQ((*hit)->tag, 300);

    hit = trie.lookup(addr("172.17.0.1"));
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ((*hit)->tag, 200);

    hit = trie.lookup(addr("8.8.8.8"));
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ((*hit)->tag, 100);

    // entries() walks every stored (prefix, value) pair.
    auto entries = trie.entries();
    EXPECT_EQ(entries.size(), 3u);
}

TEST(LpmTrieView, FibShimStaysUsable)
{
    // The old fib spelling still compiles and behaves (the header is
    // now an alias of the generic net trie).
    net::LinearLpm<int> linear;
    linear.insert(pfx("10.0.0.0/8"), 1);
    linear.insert(pfx("10.0.0.0/24"), 2);
    const int *hit = linear.lookup(addr("10.0.0.1"));
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(*hit, 2);
}
