/**
 * @file
 * Tests of net::PrefixTree: the path-compressed radix trie backing
 * the shared RIB prefix table. Unit cases pin the structural
 * invariants (compression, splice-on-erase, free-list reuse, ordered
 * iteration); the randomized cases lockstep the tree against
 * std::map and a linear-scan LPM reference.
 */

#include <algorithm>
#include <map>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "net/prefix.hh"
#include "net/prefix_tree.hh"
#include "workload/rng.hh"

using namespace bgpbench;

namespace
{

net::Prefix
pfx(const std::string &text)
{
    return net::Prefix::fromString(text);
}

net::Ipv4Address
addr(const std::string &text)
{
    return net::Ipv4Address::fromString(text);
}

/** All (prefix, value) pairs in iteration order. */
std::vector<std::pair<net::Prefix, int>>
collect(const net::PrefixTree<int> &tree)
{
    std::vector<std::pair<net::Prefix, int>> out;
    tree.forEach([&](const net::Prefix &prefix, int value) {
        out.emplace_back(prefix, value);
    });
    return out;
}

/** Linear-scan longest-prefix match over a reference map. */
std::optional<int>
linearLpm(const std::map<net::Prefix, int> &routes, net::Ipv4Address a)
{
    std::optional<int> best;
    int bestLen = -1;
    for (const auto &[prefix, value] : routes) {
        if (prefix.contains(a) && prefix.length() > bestLen) {
            bestLen = prefix.length();
            best = value;
        }
    }
    return best;
}

/** A deterministic pseudo-random prefix, /0../32 with mixed lengths. */
net::Prefix
randomPrefix(workload::Rng &rng)
{
    int length = int(rng.below(33));
    return net::Prefix(net::Ipv4Address(uint32_t(rng.next())), length);
}

} // namespace

TEST(PrefixTree, InsertFindErase)
{
    net::PrefixTree<int> tree;
    EXPECT_TRUE(tree.empty());
    EXPECT_EQ(tree.find(pfx("10.0.0.0/8")), nullptr);

    bool inserted = false;
    tree.insert(pfx("10.0.0.0/8"), 1, &inserted);
    EXPECT_TRUE(inserted);
    tree.insert(pfx("10.1.0.0/16"), 2);
    tree.insert(pfx("192.168.4.0/24"), 3);
    EXPECT_EQ(tree.size(), 3u);

    ASSERT_NE(tree.find(pfx("10.0.0.0/8")), nullptr);
    EXPECT_EQ(*tree.find(pfx("10.0.0.0/8")), 1);
    EXPECT_EQ(*tree.find(pfx("10.1.0.0/16")), 2);
    EXPECT_EQ(*tree.find(pfx("192.168.4.0/24")), 3);
    // Same address, different length: distinct keys.
    EXPECT_EQ(tree.find(pfx("10.0.0.0/16")), nullptr);

    EXPECT_TRUE(tree.erase(pfx("10.1.0.0/16")));
    EXPECT_FALSE(tree.erase(pfx("10.1.0.0/16")));
    EXPECT_EQ(tree.find(pfx("10.1.0.0/16")), nullptr);
    EXPECT_EQ(tree.size(), 2u);
}

TEST(PrefixTree, InsertReplacesFindOrInsertKeeps)
{
    net::PrefixTree<int> tree;
    tree.insert(pfx("10.0.0.0/8"), 1);
    bool inserted = true;
    tree.insert(pfx("10.0.0.0/8"), 2, &inserted);
    EXPECT_FALSE(inserted);
    EXPECT_EQ(*tree.find(pfx("10.0.0.0/8")), 2);

    int *value = tree.findOrInsert(pfx("10.0.0.0/8"), &inserted);
    EXPECT_FALSE(inserted);
    EXPECT_EQ(*value, 2);

    value = tree.findOrInsert(pfx("10.0.0.0/12"), &inserted);
    EXPECT_TRUE(inserted);
    EXPECT_EQ(*value, 0); // default-constructed on miss
    EXPECT_EQ(tree.size(), 2u);
}

TEST(PrefixTree, RootAndHostRoutes)
{
    net::PrefixTree<int> tree;
    tree.insert(pfx("0.0.0.0/0"), 7);
    tree.insert(pfx("255.255.255.255/32"), 8);
    tree.insert(pfx("0.0.0.0/32"), 9);
    EXPECT_EQ(tree.size(), 3u);
    EXPECT_EQ(*tree.find(pfx("0.0.0.0/0")), 7);
    EXPECT_EQ(*tree.find(pfx("255.255.255.255/32")), 8);
    EXPECT_EQ(*tree.find(pfx("0.0.0.0/32")), 9);

    EXPECT_TRUE(tree.erase(pfx("0.0.0.0/0")));
    EXPECT_EQ(tree.find(pfx("0.0.0.0/0")), nullptr);
    EXPECT_EQ(*tree.find(pfx("0.0.0.0/32")), 9);
}

TEST(PrefixTree, PathCompressionBoundsNodes)
{
    // A /32 under an /8 must not expand one node per bit: the
    // invariant caps live nodes at 2 * size + 1 (root included).
    net::PrefixTree<int> tree;
    tree.insert(pfx("10.0.0.0/8"), 1);
    tree.insert(pfx("10.1.2.3/32"), 2);
    tree.insert(pfx("10.1.2.4/32"), 3);
    EXPECT_LE(tree.nodeCount(), 2 * tree.size() + 1);

    workload::Rng rng(11);
    for (int i = 0; i < 2000; ++i)
        tree.insert(randomPrefix(rng), i);
    EXPECT_LE(tree.nodeCount(), 2 * tree.size() + 1);
}

TEST(PrefixTree, ErasePrunesJointsAndReusesNodes)
{
    net::PrefixTree<int> tree;
    // 10.0.0.0/9 and 10.128.0.0/9 diverge under a valueless /8 joint.
    tree.insert(pfx("10.0.0.0/9"), 1);
    tree.insert(pfx("10.128.0.0/9"), 2);
    const size_t joint_nodes = tree.nodeCount();
    EXPECT_EQ(joint_nodes, 4u); // root + joint + two leaves

    // Removing one leaf must also splice the now single-child joint.
    EXPECT_TRUE(tree.erase(pfx("10.0.0.0/9")));
    EXPECT_EQ(tree.nodeCount(), 2u);
    EXPECT_EQ(*tree.find(pfx("10.128.0.0/9")), 2);

    // Reinserting reuses freed arena slots: node count returns to the
    // joint shape without growing the arena footprint.
    const size_t bytes = tree.memoryBytes();
    tree.insert(pfx("10.0.0.0/9"), 3);
    EXPECT_EQ(tree.nodeCount(), joint_nodes);
    EXPECT_EQ(tree.memoryBytes(), bytes);
}

TEST(PrefixTree, ForEachVisitsInPrefixOrder)
{
    net::PrefixTree<int> tree;
    std::map<net::Prefix, int> reference;
    workload::Rng rng(42);
    for (int i = 0; i < 5000; ++i) {
        net::Prefix prefix = randomPrefix(rng);
        tree.insert(prefix, i);
        reference[prefix] = i;
    }
    auto rows = collect(tree);
    ASSERT_EQ(rows.size(), reference.size());
    // std::map iterates in Prefix::operator< order; the tree's
    // pre-order walk must match it exactly, duplicates and all.
    size_t i = 0;
    for (const auto &[prefix, value] : reference) {
        EXPECT_EQ(rows[i].first, prefix);
        EXPECT_EQ(rows[i].second, value);
        ++i;
    }
}

TEST(PrefixTree, RandomizedLockstepAgainstMap)
{
    net::PrefixTree<int> tree;
    std::map<net::Prefix, int> reference;
    workload::Rng rng(7);

    // Mixed inserts, replaces, and erases; prefixes are drawn from a
    // small pool so operations collide often.
    std::vector<net::Prefix> pool;
    for (int i = 0; i < 300; ++i)
        pool.push_back(randomPrefix(rng));

    for (int op = 0; op < 20000; ++op) {
        const net::Prefix &prefix = pool[rng.below(pool.size())];
        if (rng.below(3) == 0) {
            EXPECT_EQ(tree.erase(prefix), reference.erase(prefix) > 0);
        } else {
            bool inserted = false;
            tree.insert(prefix, op, &inserted);
            EXPECT_EQ(inserted, reference.find(prefix) == reference.end());
            reference[prefix] = op;
        }
        if (op % 1000 == 0) {
            ASSERT_EQ(tree.size(), reference.size());
            ASSERT_LE(tree.nodeCount(), 2 * tree.size() + 1);
        }
    }

    ASSERT_EQ(tree.size(), reference.size());
    for (const auto &[prefix, value] : reference) {
        const int *stored = tree.find(prefix);
        ASSERT_NE(stored, nullptr);
        EXPECT_EQ(*stored, value);
    }
    auto rows = collect(tree);
    ASSERT_EQ(rows.size(), reference.size());
    EXPECT_TRUE(std::is_sorted(
        rows.begin(), rows.end(),
        [](const auto &a, const auto &b) { return a.first < b.first; }));
}

TEST(PrefixTree, MatchLongestAgainstLinearReference)
{
    net::PrefixTree<int> tree;
    std::map<net::Prefix, int> reference;
    workload::Rng rng(3);
    for (int i = 0; i < 2000; ++i) {
        // Short-biased lengths so addresses actually match something.
        int length = int(rng.below(25));
        net::Prefix prefix(net::Ipv4Address(uint32_t(rng.next())),
                           length);
        tree.insert(prefix, i);
        reference[prefix] = i;
    }

    for (int i = 0; i < 5000; ++i) {
        net::Ipv4Address a(uint32_t(rng.next()));
        const int *got = tree.matchLongest(a);
        std::optional<int> expect = linearLpm(reference, a);
        ASSERT_EQ(got != nullptr, expect.has_value());
        if (got) {
            EXPECT_EQ(*got, *expect);
        }
    }

    // Specific covering chain: most-specific stored prefix wins.
    net::PrefixTree<int> chain;
    chain.insert(pfx("0.0.0.0/0"), 0);
    chain.insert(pfx("10.0.0.0/8"), 8);
    chain.insert(pfx("10.1.0.0/16"), 16);
    chain.insert(pfx("10.1.2.0/24"), 24);
    EXPECT_EQ(*chain.matchLongest(addr("10.1.2.3")), 24);
    EXPECT_EQ(*chain.matchLongest(addr("10.1.9.9")), 16);
    EXPECT_EQ(*chain.matchLongest(addr("10.9.9.9")), 8);
    EXPECT_EQ(*chain.matchLongest(addr("11.0.0.1")), 0);
    chain.erase(pfx("10.1.2.0/24"));
    EXPECT_EQ(*chain.matchLongest(addr("10.1.2.3")), 16);
}

TEST(PrefixTree, ClearKeepsCapacityAndResets)
{
    net::PrefixTree<int> tree;
    workload::Rng rng(5);
    for (int i = 0; i < 1000; ++i)
        tree.insert(randomPrefix(rng), i);
    const size_t bytes = tree.memoryBytes();
    tree.clear();
    EXPECT_TRUE(tree.empty());
    EXPECT_EQ(tree.nodeCount(), 1u); // the root survives
    EXPECT_EQ(tree.memoryBytes(), bytes);
    EXPECT_EQ(tree.find(pfx("10.0.0.0/8")), nullptr);
    tree.insert(pfx("10.0.0.0/8"), 1);
    EXPECT_EQ(tree.size(), 1u);
}
