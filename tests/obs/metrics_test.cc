/**
 * @file
 * MetricRegistry unit tests: counter/gauge/histogram semantics, the
 * order-independence of absorb() (the property the deterministic
 * reports rest on), concurrent updates through cached handles, and
 * the text/CSV/JSON exporters' byte-stability.
 */

#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/export.hh"
#include "obs/metrics.hh"
#include "obs/views.hh"

using namespace bgpbench;

TEST(Counter, AddsAndResets)
{
    obs::Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, SetAndNoteMax)
{
    obs::Gauge g;
    g.set(5.0);
    EXPECT_EQ(g.value(), 5.0);
    g.noteMax(3.0);
    EXPECT_EQ(g.value(), 5.0);
    g.noteMax(9.5);
    EXPECT_EQ(g.value(), 9.5);
    g.set(1.0); // set is unconditional, unlike noteMax
    EXPECT_EQ(g.value(), 1.0);
}

TEST(Histogram, BucketsAndOverflow)
{
    obs::Histogram h({10, 100, 1000});
    h.record(5);
    h.record(10); // inclusive upper bound
    h.record(11);
    h.record(1000);
    h.record(5000); // overflow
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.sum(), 5u + 10 + 11 + 1000 + 5000);
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(2), 1u);
    EXPECT_EQ(h.bucketCount(3), 1u); // overflow slot
    EXPECT_DOUBLE_EQ(h.mean(), double(h.sum()) / 5.0);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.bucketCount(0), 0u);
}

TEST(Histogram, TracksExactMaximum)
{
    obs::Histogram h({10, 100});
    EXPECT_EQ(h.max(), 0u);
    h.record(7);
    h.record(93);
    EXPECT_EQ(h.max(), 93u);
    h.record(40000); // overflow sample becomes the max
    EXPECT_EQ(h.max(), 40000u);
    EXPECT_EQ(h.overflowCount(), 1u);
    h.record(12);
    EXPECT_EQ(h.max(), 40000u);
    h.reset();
    EXPECT_EQ(h.max(), 0u);
    EXPECT_EQ(h.overflowCount(), 0u);
}

TEST(Histogram, QuantilesQuoteBucketBounds)
{
    obs::MetricRegistry registry;
    obs::Histogram &h = registry.histogram("lat", {10, 100, 1000});
    // 90 samples <= 10, 9 in (10, 100], 1 in (100, 1000].
    for (int i = 0; i < 90; ++i)
        h.record(5);
    for (int i = 0; i < 9; ++i)
        h.record(50);
    h.record(400);

    auto snapshot = registry.snapshot();
    ASSERT_EQ(snapshot.histograms.size(), 1u);
    const auto &row = snapshot.histograms[0];
    // A quantile is the inclusive upper bound of its bucket.
    EXPECT_EQ(obs::histogramQuantile(row, 0.50), 10u);
    EXPECT_EQ(obs::histogramQuantile(row, 0.90), 10u);
    EXPECT_EQ(obs::histogramQuantile(row, 0.95), 100u);
    // The top bucket's bound (1000) exceeds the exact maximum, so
    // the tracked max is quoted instead.
    EXPECT_EQ(obs::histogramQuantile(row, 0.999), 400u);

    obs::HistogramSummary summary = obs::summarizeHistogram(row);
    EXPECT_EQ(summary.p50, 10u);
    EXPECT_EQ(summary.p90, 10u);
    // The 99th smallest of 100 samples is the last one inside the
    // (10, 100] bucket.
    EXPECT_EQ(summary.p99, 100u);
    EXPECT_EQ(summary.max, 400u);
}

TEST(Histogram, OverflowQuantileQuotesTrackedMax)
{
    obs::MetricRegistry registry;
    obs::Histogram &h = registry.histogram("lat", {10});
    h.record(5);
    h.record(777777); // overflow
    auto row = registry.snapshot().histograms[0];
    EXPECT_EQ(row.overflow(), 1u);
    EXPECT_EQ(row.max, 777777u);
    // The overflow bucket has no bound; the exact max stands in.
    EXPECT_EQ(obs::histogramQuantile(row, 0.99), 777777u);

    // An empty histogram summarises to zeros.
    obs::MetricRegistry empty_registry;
    empty_registry.histogram("lat", {10});
    auto empty_row = empty_registry.snapshot().histograms[0];
    obs::HistogramSummary summary = obs::summarizeHistogram(empty_row);
    EXPECT_EQ(summary.p50, 0u);
    EXPECT_EQ(summary.max, 0u);
}

TEST(Histogram, AbsorbMergesMaxOrderIndependently)
{
    obs::MetricRegistry a, b;
    a.histogram("lat", {10, 100}).record(99999);
    b.histogram("lat", {10, 100}).record(5);
    a.absorb(b);
    auto row = a.snapshot().histograms[0];
    EXPECT_EQ(row.count, 2u);
    EXPECT_EQ(row.max, 99999u);

    // Absorbing the large sample *into* the small side gives the
    // same max (merge takes the larger of the two).
    obs::MetricRegistry c, d;
    c.histogram("lat", {10, 100}).record(5);
    d.histogram("lat", {10, 100}).record(99999);
    c.absorb(d);
    EXPECT_EQ(c.snapshot().histograms[0].max, 99999u);
}

TEST(MetricExport, HistogramPercentileRows)
{
    obs::MetricRegistry registry;
    obs::Histogram &h = registry.histogram("lat", {10, 100});
    for (int i = 0; i < 99; ++i)
        h.record(5);
    h.record(123456); // overflow; also the max
    auto snapshot = registry.snapshot();

    std::ostringstream text;
    obs::printMetricsText(text, snapshot);
    EXPECT_NE(text.str().find("lat [overflow]"), std::string::npos);
    EXPECT_NE(text.str().find("lat [p50]"), std::string::npos);
    EXPECT_NE(text.str().find("lat [p90]"), std::string::npos);
    EXPECT_NE(text.str().find("lat [p99]"), std::string::npos);
    EXPECT_NE(text.str().find("lat [max]"), std::string::npos);
    EXPECT_NE(text.str().find("123456"), std::string::npos);

    std::ostringstream csv;
    obs::printMetricsCsv(csv, snapshot);
    EXPECT_NE(csv.str().find("histogram,lat,overflow,1"),
              std::string::npos);
    EXPECT_NE(csv.str().find("histogram,lat,p50,10"),
              std::string::npos);
    EXPECT_NE(csv.str().find("histogram,lat,max,123456"),
              std::string::npos);

    std::ostringstream json;
    obs::writeMetricsJson(json, snapshot);
    EXPECT_NE(json.str().find("\"overflow\": 1"), std::string::npos);
    EXPECT_NE(json.str().find("\"p50\": 10"), std::string::npos);
    EXPECT_NE(json.str().find("\"p99\":"), std::string::npos);
    EXPECT_NE(json.str().find("\"max\": 123456"), std::string::npos);
}

TEST(MetricRegistry, CreateOrGetReturnsSameInstance)
{
    obs::MetricRegistry registry;
    obs::Counter &a = registry.counter("x");
    obs::Counter &b = registry.counter("x");
    EXPECT_EQ(&a, &b);
    a.add(3);
    EXPECT_EQ(registry.counterValue("x"), 3u);
    // Unregistered names read as zero rather than registering.
    EXPECT_EQ(registry.counterValue("never"), 0u);
    EXPECT_EQ(registry.gaugeValue("never"), 0.0);
}

namespace
{

/** A shard-like registry with a fixed set of updates applied. */
void
populate(obs::MetricRegistry &registry, uint64_t events,
         double peak, uint64_t sample)
{
    registry.counter("events").add(events);
    registry.gauge("peak").noteMax(peak);
    registry.histogram("lat", {10, 100}).record(sample);
}

std::string
exportAll(const obs::MetricRegistry &registry)
{
    std::ostringstream os;
    auto snapshot = registry.snapshot();
    obs::printMetricsText(os, snapshot);
    obs::printMetricsCsv(os, snapshot);
    obs::writeMetricsJson(os, snapshot);
    return os.str();
}

} // namespace

TEST(MetricRegistry, AbsorbIsOrderIndependent)
{
    // Fold three shard registries into a run registry in two
    // different orders; every exported byte must match.
    auto build = [](const std::vector<int> &order) {
        std::vector<obs::MetricRegistry> shards(3);
        populate(shards[0], 10, 4.0, 5);
        populate(shards[1], 20, 9.0, 50);
        populate(shards[2], 30, 2.0, 500);
        obs::MetricRegistry run;
        for (int i : order)
            run.absorb(shards[size_t(i)]);
        return exportAll(run);
    };
    std::string forward = build({0, 1, 2});
    std::string backward = build({2, 1, 0});
    EXPECT_EQ(forward, backward);
    EXPECT_FALSE(forward.empty());
}

TEST(MetricRegistry, AbsorbSumsCountersAndMaxesGauges)
{
    obs::MetricRegistry a, b;
    populate(a, 10, 4.0, 5);
    populate(b, 20, 9.0, 500);
    a.absorb(b);
    EXPECT_EQ(a.counterValue("events"), 30u);
    EXPECT_EQ(a.gaugeValue("peak"), 9.0);
    auto snapshot = a.snapshot();
    ASSERT_EQ(snapshot.histograms.size(), 1u);
    EXPECT_EQ(snapshot.histograms[0].count, 2u);
    EXPECT_EQ(snapshot.histograms[0].sum, 505u);
    // The source was drained.
    EXPECT_EQ(b.counterValue("events"), 0u);
    EXPECT_TRUE(b.snapshot().histograms[0].count == 0u);
}

TEST(MetricRegistry, ConcurrentUpdatesThroughCachedHandles)
{
    // The TSan target runs this too: registration from several
    // threads plus relaxed updates through cached handles must be
    // race-free and lose no increments.
    constexpr size_t threads = 8;
    constexpr uint64_t perThread = 20000;
    obs::MetricRegistry registry;
    std::vector<std::thread> workers;
    for (size_t t = 0; t < threads; ++t) {
        workers.emplace_back([&registry, t] {
            obs::Counter &shared = registry.counter("shared");
            obs::Counter &mine =
                registry.counter("thread." + std::to_string(t));
            obs::Histogram &lat =
                registry.histogram("lat", {10, 100, 1000});
            obs::Gauge &peak = registry.gauge("peak");
            for (uint64_t i = 0; i < perThread; ++i) {
                shared.add();
                mine.add();
                lat.record(i % 2000);
                peak.noteMax(double(i));
            }
        });
    }
    for (auto &worker : workers)
        worker.join();

    EXPECT_EQ(registry.counterValue("shared"), threads * perThread);
    for (size_t t = 0; t < threads; ++t) {
        EXPECT_EQ(registry.counterValue("thread." + std::to_string(t)),
                  perThread);
    }
    EXPECT_EQ(registry.gaugeValue("peak"), double(perThread - 1));
    auto snapshot = registry.snapshot();
    ASSERT_EQ(snapshot.histograms.size(), 1u);
    EXPECT_EQ(snapshot.histograms[0].count, threads * perThread);
}

TEST(MetricRegistry, SnapshotSortsByName)
{
    obs::MetricRegistry registry;
    registry.counter("zeta").add(1);
    registry.counter("alpha").add(2);
    registry.counter("mid").add(3);
    auto snapshot = registry.snapshot();
    ASSERT_EQ(snapshot.counters.size(), 3u);
    EXPECT_EQ(snapshot.counters[0].first, "alpha");
    EXPECT_EQ(snapshot.counters[1].first, "mid");
    EXPECT_EQ(snapshot.counters[2].first, "zeta");
}

TEST(MetricExport, FormatsParseAndAgree)
{
    obs::ExportFormat format = obs::ExportFormat::Text;
    EXPECT_TRUE(obs::parseExportFormat("text", format));
    EXPECT_EQ(format, obs::ExportFormat::Text);
    EXPECT_TRUE(obs::parseExportFormat("csv", format));
    EXPECT_EQ(format, obs::ExportFormat::Csv);
    EXPECT_TRUE(obs::parseExportFormat("json", format));
    EXPECT_EQ(format, obs::ExportFormat::Json);
    EXPECT_FALSE(obs::parseExportFormat("xml", format));

    obs::MetricRegistry registry;
    populate(registry, 7, 3.5, 42);
    auto snapshot = registry.snapshot();
    std::ostringstream text, dispatched;
    obs::printMetricsText(text, snapshot);
    obs::exportMetrics(dispatched, snapshot, obs::ExportFormat::Text);
    EXPECT_EQ(dispatched.str(), text.str());
    EXPECT_NE(text.str().find("events"), std::string::npos);

    std::ostringstream csv;
    obs::printMetricsCsv(csv, snapshot);
    EXPECT_NE(csv.str().find("counter,events,,7"),
              std::string::npos);

    std::ostringstream json;
    obs::writeMetricsJson(json, snapshot);
    EXPECT_EQ(json.str().front(), '{');
    EXPECT_NE(json.str().find("\"counters\""), std::string::npos);
}

TEST(MetricViews, DedupAndWireViewsReadRegistry)
{
    obs::MetricRegistry registry;
    registry.counter(obs::metric::internLookups).add(100);
    registry.counter(obs::metric::internHits).add(75);
    registry.counter(obs::metric::internMisses).add(25);
    registry.gauge(obs::metric::internLiveSets).noteMax(25.0);
    registry.counter(obs::metric::internBytesDeduplicated).add(4096);

    std::ostringstream dedup;
    obs::printDedupView(dedup, "interner", registry);
    EXPECT_NE(dedup.str().find("hit ratio"), std::string::npos);
    EXPECT_NE(dedup.str().find("75.0%"), std::string::npos);

    registry.counter(obs::metric::wireAcquires).add(10);
    registry.counter(obs::metric::wirePoolHits).add(8);
    registry.counter(obs::metric::wirePoolMisses).add(2);
    registry.counter(obs::metric::wireSharedEncodes).add(5);
    registry.counter(obs::metric::wireBytesDeduplicated).add(1234);
    registry.gauge(obs::metric::wireOutstandingSegments).noteMax(3.0);
    registry.gauge(obs::metric::wirePeakOutstandingSegments)
        .noteMax(6.0);

    std::ostringstream wire;
    obs::printWireView(wire, "pool", registry);
    EXPECT_NE(wire.str().find("pool acquires"), std::string::npos);
    EXPECT_NE(wire.str().find("80.0%"), std::string::npos);
}
