/**
 * @file
 * Tracer / TraceBuffer / Span unit tests: detached no-op behaviour
 * (the clock must never be read), deterministic Chrome trace_event
 * JSON, and order-independent absorb of per-shard buffers.
 */

#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "obs/trace.hh"

using namespace bgpbench;

TEST(Tracer, DetachedRecordsNothingAndNeverReadsClock)
{
    obs::Tracer tracer;
    EXPECT_FALSE(tracer.enabled());
    tracer.complete("x", "cat", 0, 0, 10, 20);
    tracer.instant("y", "cat", 0, 0, 30);

    size_t clock_reads = 0;
    {
        OBS_SPAN(&tracer, "span", "cat", obs::kTrackPhases, 0, [&] {
            ++clock_reads;
            return uint64_t(0);
        });
    }
    {
        // A null tracer pointer is equally inert.
        OBS_SPAN(static_cast<obs::Tracer *>(nullptr), "span", "cat",
                 obs::kTrackPhases, 0, [&] {
                     ++clock_reads;
                     return uint64_t(0);
                 });
    }
    EXPECT_EQ(clock_reads, 0u);
}

TEST(Tracer, AttachedSpanReadsClockTwice)
{
    obs::TraceBuffer buffer;
    obs::Tracer tracer;
    tracer.attach(&buffer);

    uint64_t now = 100;
    {
        OBS_SPAN(&tracer, "work", "test", obs::kTrackRouters, 7, [&] {
            uint64_t t = now;
            now += 50;
            return t;
        });
    }
    ASSERT_EQ(buffer.events().size(), 1u);
    const obs::TraceEvent &event = buffer.events()[0];
    EXPECT_STREQ(event.name, "work");
    EXPECT_STREQ(event.category, "test");
    EXPECT_EQ(event.pid, obs::kTrackRouters);
    EXPECT_EQ(event.tid, 7u);
    EXPECT_EQ(event.beginNs, 100u);
    EXPECT_EQ(event.endNs, 150u);
    EXPECT_FALSE(event.instant);

    tracer.detach();
    tracer.complete("late", "test", 0, 0, 0, 1);
    EXPECT_EQ(buffer.events().size(), 1u);
}

TEST(TraceBuffer, AbsorbAppendsAndClearsSource)
{
    obs::TraceBuffer run, shard;
    shard.record({"a", "c", 0, 0, 1, 2, false});
    shard.record({"b", "c", 0, 0, 3, 3, true});
    run.absorb(shard);
    EXPECT_TRUE(shard.empty());
    ASSERT_EQ(run.events().size(), 2u);
    EXPECT_STREQ(run.events()[1].name, "b");
}

namespace
{

std::string
chromeJson(const obs::TraceBuffer &buffer)
{
    std::ostringstream os;
    buffer.writeChromeTrace(os);
    return os.str();
}

} // namespace

TEST(TraceBuffer, ChromeTraceStructure)
{
    obs::TraceBuffer buffer;
    buffer.record(
        {"establish", "phase", obs::kTrackPhases, 0, 1000, 251000,
         false});
    buffer.record(
        {"window", "engine", obs::kTrackEngine, 1, 2000, 4000,
         false});
    buffer.record(
        {"Established", "session", obs::kTrackRouters, 3, 1500, 1500,
         true});

    std::string json = chromeJson(buffer);
    // Track metadata names the three lanes.
    EXPECT_NE(json.find("\"benchmark phases\""), std::string::npos);
    EXPECT_NE(json.find("\"topology engine\""), std::string::npos);
    EXPECT_NE(json.find("\"routers\""), std::string::npos);
    // Complete events carry ph "X" with ts/dur in microseconds.
    EXPECT_NE(json.find("\"name\": \"establish\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ts\": 1.000"), std::string::npos);
    EXPECT_NE(json.find("\"dur\": 250.000"), std::string::npos);
    // Instants carry ph "i" and a scope, no duration.
    EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
    EXPECT_NE(json.find("\"s\": \"t\""), std::string::npos);
    EXPECT_EQ(json.find("\"dur\": 0.000"), std::string::npos);
}

TEST(TraceBuffer, ChromeTraceOrdersByVirtualTime)
{
    // Record out of order; the writer must sort by (beginNs, pid,
    // tid) so the bytes cannot depend on recording order across
    // lanes.
    obs::TraceBuffer late_first;
    late_first.record(
        {"late", "t", obs::kTrackEngine, 0, 5000, 6000, false});
    late_first.record(
        {"early", "t", obs::kTrackPhases, 0, 1000, 2000, false});

    std::string json = chromeJson(late_first);
    EXPECT_LT(json.find("\"early\""), json.find("\"late\""));
}

TEST(TraceBuffer, AbsorbOrderOfDisjointShardsIsByteStable)
{
    // Two shards whose events never tie on (beginNs, pid, tid):
    // folding them in either order must serialise identically.
    auto shard = [](uint32_t tid, uint64_t base) {
        obs::TraceBuffer b;
        b.record({"w0", "engine", obs::kTrackEngine, tid, base,
                  base + 10, false});
        b.record({"w1", "engine", obs::kTrackEngine, tid, base + 20,
                  base + 30, false});
        return b;
    };
    obs::TraceBuffer forward, backward;
    {
        obs::TraceBuffer s0 = shard(0, 100), s1 = shard(1, 105);
        forward.absorb(s0);
        forward.absorb(s1);
    }
    {
        obs::TraceBuffer s0 = shard(0, 100), s1 = shard(1, 105);
        backward.absorb(s1);
        backward.absorb(s0);
    }
    EXPECT_EQ(chromeJson(forward), chromeJson(backward));
}

TEST(TraceBuffer, EmptyBufferStillWritesValidSkeleton)
{
    obs::TraceBuffer buffer;
    std::string json = chromeJson(buffer);
    EXPECT_NE(json.find("\"traceEvents\": []"), std::string::npos);
    EXPECT_EQ(json.front(), '{');
}
