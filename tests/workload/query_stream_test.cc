/**
 * @file
 * Tests for the synthetic read-side query workload.
 */

#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "workload/query_stream.hh"

using namespace bgpbench;
using namespace bgpbench::workload;

namespace
{

std::vector<net::Prefix>
targets(size_t count)
{
    std::vector<net::Prefix> out;
    for (size_t i = 0; i < count; ++i)
        out.push_back(net::Prefix(
            net::Ipv4Address(10, uint8_t(i / 256), uint8_t(i % 256), 0),
            24));
    return out;
}

} // namespace

TEST(QueryMix, ParseRoundTrips)
{
    QueryMix mix;
    ASSERT_TRUE(QueryMix::parse("88:10:1.5:0.5", mix));
    EXPECT_DOUBLE_EQ(mix.lookup, 88.0);
    EXPECT_DOUBLE_EQ(mix.bestPath, 10.0);
    EXPECT_DOUBLE_EQ(mix.scan, 1.5);
    EXPECT_DOUBLE_EQ(mix.peerStats, 0.5);

    QueryMix again;
    ASSERT_TRUE(QueryMix::parse(mix.toString(), again));
    EXPECT_DOUBLE_EQ(again.lookup, mix.lookup);
    EXPECT_DOUBLE_EQ(again.peerStats, mix.peerStats);
}

TEST(QueryMix, ParseRejectsMalformedInput)
{
    QueryMix mix;
    EXPECT_FALSE(QueryMix::parse("", mix));
    EXPECT_FALSE(QueryMix::parse("1:2:3", mix));
    EXPECT_FALSE(QueryMix::parse("1:2:3:4:5", mix));
    EXPECT_FALSE(QueryMix::parse("a:2:3:4", mix));
    EXPECT_FALSE(QueryMix::parse("1:-2:3:4", mix));
    EXPECT_FALSE(QueryMix::parse("0:0:0:0", mix));
}

TEST(QueryStream, SameSeedSameStream)
{
    QueryStreamConfig config;
    config.seed = 7;
    QueryStream a(targets(64), config);
    QueryStream b(targets(64), config);
    for (int i = 0; i < 2000; ++i) {
        Query qa = a.next();
        Query qb = b.next();
        EXPECT_EQ(qa.kind, qb.kind);
        EXPECT_EQ(qa.addr, qb.addr);
        EXPECT_EQ(qa.prefix, qb.prefix);
    }
    EXPECT_EQ(a.generated(), 2000u);
}

TEST(QueryStream, DifferentSeedsDiverge)
{
    QueryStreamConfig config;
    config.seed = 1;
    QueryStream a(targets(64), config);
    config.seed = 2;
    QueryStream b(targets(64), config);
    int differing = 0;
    for (int i = 0; i < 200; ++i) {
        Query qa = a.next();
        Query qb = b.next();
        if (qa.kind != qb.kind || qa.prefix != qb.prefix)
            ++differing;
    }
    EXPECT_GT(differing, 0);
}

TEST(QueryStream, MixProportionsRoughlyHold)
{
    QueryStreamConfig config;
    config.seed = 3;
    ASSERT_TRUE(QueryMix::parse("50:30:15:5", config.mix));
    QueryStream stream(targets(32), config);

    uint64_t counts[4] = {0, 0, 0, 0};
    const uint64_t total = 20000;
    for (uint64_t i = 0; i < total; ++i)
        ++counts[size_t(stream.next().kind)];

    // Class shares within 3 points of the configured weights.
    EXPECT_NEAR(double(counts[0]) / total, 0.50, 0.03);
    EXPECT_NEAR(double(counts[1]) / total, 0.30, 0.03);
    EXPECT_NEAR(double(counts[2]) / total, 0.15, 0.03);
    EXPECT_NEAR(double(counts[3]) / total, 0.05, 0.03);
}

TEST(QueryStream, ZipfSkewFavoursHeadTargets)
{
    QueryStreamConfig config;
    config.seed = 5;
    config.zipfExponent = 1.0;
    // All best-path queries so every draw names its target directly.
    ASSERT_TRUE(QueryMix::parse("0:1:0:0", config.mix));
    auto population = targets(100);
    QueryStream stream(population, config);

    std::map<net::Prefix, uint64_t> hits;
    for (int i = 0; i < 20000; ++i)
        ++hits[stream.next().prefix];

    // Rank 0 beats rank 10 beats rank 90: the defining property of a
    // Zipf popularity curve (with s=1 the head takes ~1/H(100) ~ 19%).
    uint64_t head = hits[population[0]];
    uint64_t mid = hits[population[10]];
    uint64_t tail = hits[population[90]];
    EXPECT_GT(head, 4 * mid);
    EXPECT_GT(mid, tail);
}

TEST(QueryStream, UniformWhenExponentZero)
{
    QueryStreamConfig config;
    config.seed = 11;
    config.zipfExponent = 0.0;
    ASSERT_TRUE(QueryMix::parse("0:1:0:0", config.mix));
    auto population = targets(10);
    QueryStream stream(population, config);

    std::map<net::Prefix, uint64_t> hits;
    const uint64_t total = 20000;
    for (uint64_t i = 0; i < total; ++i)
        ++hits[stream.next().prefix];
    for (const auto &[prefix, count] : hits)
        EXPECT_NEAR(double(count) / total, 0.1, 0.02);
}

TEST(QueryStream, ScanQueriesWidenTheTarget)
{
    QueryStreamConfig config;
    config.seed = 13;
    config.scanWidenBits = 8;
    ASSERT_TRUE(QueryMix::parse("0:0:1:0", config.mix));
    QueryStream stream(targets(16), config);
    for (int i = 0; i < 100; ++i) {
        Query query = stream.next();
        ASSERT_EQ(query.kind, QueryKind::Scan);
        EXPECT_EQ(query.prefix.length(), 16);
    }
}

TEST(QueryStream, LookupAddressesStayInsideTarget)
{
    QueryStreamConfig config;
    config.seed = 17;
    ASSERT_TRUE(QueryMix::parse("1:0:0:0", config.mix));
    auto population = targets(8);
    QueryStream stream(population, config);
    for (int i = 0; i < 500; ++i) {
        Query query = stream.next();
        ASSERT_EQ(query.kind, QueryKind::Lookup);
        bool covered = false;
        for (const net::Prefix &target : population)
            covered = covered || target.contains(query.addr);
        EXPECT_TRUE(covered);
    }
}
