/**
 * @file
 * Tests for the churn workload generator.
 */

#include <gtest/gtest.h>

#include <map>

#include "bgp/message.hh"
#include "net/logging.hh"
#include "workload/churn.hh"

using namespace bgpbench;
using namespace bgpbench::workload;

namespace
{

std::vector<RouteSpec>
routes(size_t count)
{
    RouteSetConfig config;
    config.count = count;
    config.seed = 4;
    return generateRouteSet(config);
}

ChurnConfig
churnConfig(size_t events, size_t per_packet = 1)
{
    ChurnConfig config;
    config.stream.speakerAs = 65001;
    config.stream.nextHop = net::Ipv4Address(10, 0, 1, 2);
    config.stream.prefixesPerPacket = per_packet;
    config.events = events;
    return config;
}

/** Replay a stream and track per-prefix announced/withdrawn state. */
struct Replay
{
    std::map<net::Prefix, int> state; // +1 announced, -1 withdrawn
    size_t announces = 0;
    size_t withdraws = 0;
    size_t transactions = 0;

    void
    feed(const std::vector<StreamPacket> &packets)
    {
        for (const auto &pkt : packets) {
            bgp::DecodeError error;
            auto msg = bgp::decodeMessage(pkt.wire->bytes(), error);
            ASSERT_TRUE(msg.has_value()) << error.detail;
            const auto &update = std::get<bgp::UpdateMessage>(*msg);
            for (const auto &p : update.withdrawnRoutes) {
                state[p] = -1;
                ++withdraws;
            }
            for (const auto &p : update.nlri) {
                state[p] = 1;
                ++announces;
            }
            transactions += pkt.transactions;
        }
    }
};

} // namespace

TEST(Churn, EmitsRequestedEventCount)
{
    auto rs = routes(100);
    auto packets = buildChurnStream(rs, churnConfig(500));
    Replay replay;
    replay.feed(packets);
    // At least the requested events; possibly a convergence tail.
    EXPECT_GE(replay.transactions, 500u);
    EXPECT_LE(replay.transactions, 560u);
    EXPECT_GT(replay.withdraws, 50u);
    EXPECT_GT(replay.announces, replay.withdraws);
}

TEST(Churn, ConvergesBackToAnnounced)
{
    auto rs = routes(100);
    auto packets = buildChurnStream(rs, churnConfig(1000));
    Replay replay;
    replay.feed(packets);
    for (const auto &[prefix, s] : replay.state)
        EXPECT_EQ(s, 1) << prefix.toString() << " left withdrawn";
}

TEST(Churn, OnlyFlappingSubsetTouched)
{
    auto rs = routes(200);
    auto config = churnConfig(800);
    config.flappingFraction = 0.1; // 20 prefixes
    auto packets = buildChurnStream(rs, config);
    Replay replay;
    replay.feed(packets);
    EXPECT_LE(replay.state.size(), 20u);
    EXPECT_GE(replay.state.size(), 10u);
}

TEST(Churn, DeterministicInSeed)
{
    auto rs = routes(50);
    auto a = buildChurnStream(rs, churnConfig(300));
    auto b = buildChurnStream(rs, churnConfig(300));
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_TRUE(*a[i].wire == *b[i].wire);

    auto config = churnConfig(300);
    config.seed = 123;
    auto c = buildChurnStream(rs, config);
    bool differs = c.size() != a.size();
    for (size_t i = 0; !differs && i < a.size(); ++i)
        differs = !(*a[i].wire == *c[i].wire);
    EXPECT_TRUE(differs);
}

TEST(Churn, ReAnnouncementsChangeAttributes)
{
    // With a single flapper, successive announcements must alternate
    // path lengths (attribute flaps, not duplicates).
    auto rs = routes(10);
    auto config = churnConfig(200);
    config.flappingFraction = 0.05; // exactly 1 flapper
    config.withdrawFraction = 0.5;
    auto packets = buildChurnStream(rs, config);

    std::vector<int> path_lengths;
    for (const auto &pkt : packets) {
        bgp::DecodeError error;
        auto msg = bgp::decodeMessage(pkt.wire->bytes(), error);
        const auto &update = std::get<bgp::UpdateMessage>(*msg);
        if (update.attributes) {
            path_lengths.push_back(
                update.attributes->asPath.pathLength());
        }
    }
    ASSERT_GT(path_lengths.size(), 4u);
    bool saw_change = false;
    for (size_t i = 1; i < path_lengths.size(); ++i)
        saw_change = saw_change || path_lengths[i] != path_lengths[0];
    EXPECT_TRUE(saw_change);
}

TEST(Churn, LargePacketPackingRespected)
{
    auto rs = routes(500);
    auto config = churnConfig(3000, 100);
    config.flappingFraction = 0.5;
    auto packets = buildChurnStream(rs, config);
    size_t max_txn = 0;
    for (const auto &pkt : packets) {
        EXPECT_LE(pkt.wire->size(), bgp::proto::maxMessageBytes);
        max_txn = std::max(max_txn, pkt.transactions);
    }
    EXPECT_LE(max_txn, 100u);
    EXPECT_GT(max_txn, 10u); // packing actually happens
}

TEST(Churn, RejectsBadConfig)
{
    auto rs = routes(10);
    EXPECT_THROW(buildChurnStream({}, churnConfig(10)), FatalError);
    auto config = churnConfig(10);
    config.stream.speakerAs = 0;
    EXPECT_THROW(buildChurnStream(rs, config), FatalError);
    config = churnConfig(10);
    config.withdrawFraction = 1.5;
    EXPECT_THROW(buildChurnStream(rs, config), FatalError);
}
