/**
 * @file
 * Tests for routing-table generation.
 */

#include <gtest/gtest.h>

#include <unordered_set>

#include "net/logging.hh"
#include "workload/route_set.hh"
#include "workload/rng.hh"

using namespace bgpbench;
using namespace bgpbench::workload;

TEST(Rng, Deterministic)
{
    Rng a(99);
    Rng b(99);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, RangeBounds)
{
    Rng rng(5);
    for (int i = 0; i < 1000; ++i) {
        uint64_t v = rng.range(10, 20);
        EXPECT_GE(v, 10u);
        EXPECT_LE(v, 20u);
    }
    for (int i = 0; i < 1000; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(RouteSet, GeneratesRequestedCount)
{
    RouteSetConfig config;
    config.count = 1234;
    auto routes = generateRouteSet(config);
    EXPECT_EQ(routes.size(), 1234u);
}

TEST(RouteSet, PrefixesAreUnique)
{
    RouteSetConfig config;
    config.count = 5000;
    auto routes = generateRouteSet(config);
    std::unordered_set<net::Prefix> seen;
    for (const auto &r : routes)
        EXPECT_TRUE(seen.insert(r.prefix).second)
            << r.prefix.toString();
}

TEST(RouteSet, DeterministicInSeed)
{
    RouteSetConfig config;
    config.count = 200;
    config.seed = 7;
    auto a = generateRouteSet(config);
    auto b = generateRouteSet(config);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].prefix, b[i].prefix);
        EXPECT_EQ(a[i].basePath, b[i].basePath);
    }

    config.seed = 8;
    auto c = generateRouteSet(config);
    bool any_diff = false;
    for (size_t i = 0; i < a.size(); ++i)
        any_diff = any_diff || a[i].prefix != c[i].prefix;
    EXPECT_TRUE(any_diff);
}

TEST(RouteSet, PathLengthsWithinBounds)
{
    RouteSetConfig config;
    config.count = 500;
    config.minPathLength = 2;
    config.maxPathLength = 5;
    for (const auto &r : generateRouteSet(config)) {
        EXPECT_GE(r.basePath.size(), 2u);
        EXPECT_LE(r.basePath.size(), 5u);
        for (auto asn : r.basePath)
            EXPECT_NE(asn, 0);
    }
}

TEST(RouteSet, MaskLengthMixMatchesConfig)
{
    RouteSetConfig config;
    config.count = 4000;
    config.slash24Fraction = 0.5;
    size_t slash24 = 0;
    for (const auto &r : generateRouteSet(config)) {
        EXPECT_GE(r.prefix.length(), 16);
        EXPECT_LE(r.prefix.length(), 24);
        slash24 += r.prefix.length() == 24;
    }
    EXPECT_NEAR(double(slash24) / 4000.0, 0.5, 0.05);
}

TEST(RouteSet, AvoidsLoopbackSpace)
{
    RouteSetConfig config;
    config.count = 3000;
    for (const auto &r : generateRouteSet(config)) {
        EXPECT_NE(r.prefix.address().octet(0), 127) << "loopback";
        EXPECT_GE(r.prefix.address().octet(0), 11);
        EXPECT_LE(r.prefix.address().octet(0), 200);
    }
}

TEST(RouteSet, RejectsBadConfig)
{
    RouteSetConfig config;
    config.count = 0;
    EXPECT_THROW(generateRouteSet(config), FatalError);
    config.count = 10;
    config.minPathLength = 3;
    config.maxPathLength = 2;
    EXPECT_THROW(generateRouteSet(config), FatalError);
}

TEST(DestinationPool, AddressesInsideRoutes)
{
    RouteSetConfig config;
    config.count = 100;
    auto routes = generateRouteSet(config);
    auto pool = destinationPool(routes, 256, 5);
    ASSERT_EQ(pool.size(), 256u);
    for (const auto &addr : pool) {
        bool covered = false;
        for (const auto &r : routes)
            covered = covered || r.prefix.contains(addr);
        EXPECT_TRUE(covered) << addr.toString();
    }
}

TEST(DestinationPool, RequiresRoutes)
{
    EXPECT_THROW(destinationPool({}, 4, 1), FatalError);
}
