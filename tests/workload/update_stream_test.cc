/**
 * @file
 * Tests for update-stream construction (Table I packet-size classes).
 */

#include <gtest/gtest.h>

#include "bgp/message.hh"
#include "net/logging.hh"
#include "workload/update_stream.hh"

using namespace bgpbench;
using namespace bgpbench::workload;

namespace
{

std::vector<RouteSpec>
routes(size_t count)
{
    RouteSetConfig config;
    config.count = count;
    config.seed = 3;
    return generateRouteSet(config);
}

StreamConfig
smallConfig()
{
    StreamConfig c;
    c.speakerAs = 65001;
    c.nextHop = net::Ipv4Address(10, 0, 1, 2);
    c.prefixesPerPacket = 1;
    return c;
}

bgp::UpdateMessage
decodeUpdate(const StreamPacket &pkt)
{
    bgp::DecodeError error;
    auto msg = bgp::decodeMessage(pkt.wire->bytes(), error);
    EXPECT_TRUE(msg.has_value()) << error.detail;
    return std::get<bgp::UpdateMessage>(*msg);
}

} // namespace

TEST(UpdateStream, SmallPacketsOnePrefixEach)
{
    auto rs = routes(50);
    auto packets = buildAnnouncementStream(rs, smallConfig());
    ASSERT_EQ(packets.size(), 50u);
    EXPECT_EQ(streamTransactions(packets), 50u);

    for (size_t i = 0; i < packets.size(); ++i) {
        auto update = decodeUpdate(packets[i]);
        ASSERT_EQ(update.nlri.size(), 1u);
        EXPECT_EQ(update.nlri[0], rs[i].prefix);
        ASSERT_TRUE(update.attributes);
        EXPECT_EQ(update.attributes->asPath.firstAs(), 65001);
        EXPECT_EQ(update.attributes->nextHop,
                  net::Ipv4Address(10, 0, 1, 2));
    }
}

TEST(UpdateStream, LargePacketsCarry500Prefixes)
{
    auto rs = routes(1200);
    StreamConfig config = smallConfig();
    config.prefixesPerPacket = 500;
    auto packets = buildAnnouncementStream(rs, config);

    ASSERT_EQ(packets.size(), 3u);
    EXPECT_EQ(packets[0].transactions, 500u);
    EXPECT_EQ(packets[1].transactions, 500u);
    EXPECT_EQ(packets[2].transactions, 200u);
    EXPECT_EQ(streamTransactions(packets), 1200u);

    // Every packet decodes and respects the 4096-byte limit.
    for (const auto &pkt : packets) {
        EXPECT_LE(pkt.wire->size(), bgp::proto::maxMessageBytes);
        auto update = decodeUpdate(pkt);
        EXPECT_EQ(update.nlri.size(), pkt.transactions);
    }
}

TEST(UpdateStream, PacketGroupSharesAttributes)
{
    auto rs = routes(600);
    StreamConfig config = smallConfig();
    config.prefixesPerPacket = 500;
    auto packets = buildAnnouncementStream(rs, config);
    auto update = decodeUpdate(packets[0]);
    // One attribute block for the whole 500-prefix group is exactly
    // what makes "large packets" cheap per prefix.
    ASSERT_TRUE(update.attributes);
    EXPECT_EQ(update.attributes->asPath.firstAs(), 65001);
}

TEST(UpdateStream, ExtraPrependsLengthenEveryPath)
{
    auto rs = routes(20);
    StreamConfig base = smallConfig();
    StreamConfig longer = base;
    longer.extraPrepends = 2;

    auto base_packets = buildAnnouncementStream(rs, base);
    auto long_packets = buildAnnouncementStream(rs, longer);

    for (size_t i = 0; i < rs.size(); ++i) {
        auto a = decodeUpdate(base_packets[i]);
        auto b = decodeUpdate(long_packets[i]);
        EXPECT_EQ(b.attributes->asPath.pathLength(),
                  a.attributes->asPath.pathLength() + 2);
        // Same origin AS: still "the same route", just longer.
        EXPECT_EQ(b.attributes->asPath.originAs(),
                  a.attributes->asPath.originAs());
    }
}

TEST(UpdateStream, WithdrawalStreamSmall)
{
    auto rs = routes(30);
    auto packets = buildWithdrawalStream(rs, smallConfig());
    ASSERT_EQ(packets.size(), 30u);
    for (size_t i = 0; i < packets.size(); ++i) {
        auto update = decodeUpdate(packets[i]);
        ASSERT_EQ(update.withdrawnRoutes.size(), 1u);
        EXPECT_EQ(update.withdrawnRoutes[0], rs[i].prefix);
        EXPECT_TRUE(update.nlri.empty());
        EXPECT_FALSE(update.attributes);
    }
}

TEST(UpdateStream, WithdrawalStreamLarge)
{
    auto rs = routes(1000);
    StreamConfig config = smallConfig();
    config.prefixesPerPacket = 500;
    auto packets = buildWithdrawalStream(rs, config);
    ASSERT_EQ(packets.size(), 2u);
    EXPECT_EQ(streamTransactions(packets), 1000u);
}

TEST(UpdateStream, StreamBytesMatchesWireSizes)
{
    auto rs = routes(10);
    auto packets = buildAnnouncementStream(rs, smallConfig());
    size_t expected = 0;
    for (const auto &pkt : packets)
        expected += pkt.wire->size();
    EXPECT_EQ(streamBytes(packets), expected);
}

TEST(UpdateStream, LargePacketsAreSmallerOnWirePerPrefix)
{
    auto rs = routes(500);
    auto small = buildAnnouncementStream(rs, smallConfig());
    StreamConfig large_cfg = smallConfig();
    large_cfg.prefixesPerPacket = 500;
    auto large = buildAnnouncementStream(rs, large_cfg);

    // Packing amortises header + attributes: at least 5x fewer bytes
    // per prefix.
    EXPECT_GT(streamBytes(small), 5 * streamBytes(large));
}

TEST(UpdateStream, RejectsBadConfig)
{
    auto rs = routes(5);
    StreamConfig config = smallConfig();
    config.speakerAs = 0;
    EXPECT_THROW(buildAnnouncementStream(rs, config), FatalError);
    config = smallConfig();
    config.prefixesPerPacket = 0;
    EXPECT_THROW(buildAnnouncementStream(rs, config), FatalError);
    EXPECT_THROW(buildWithdrawalStream(rs, config), FatalError);
}

TEST(UpdateStream, EmptyRouteSetMakesNoPackets)
{
    EXPECT_TRUE(buildAnnouncementStream({}, smallConfig()).empty());
    EXPECT_TRUE(buildWithdrawalStream({}, smallConfig()).empty());
}
