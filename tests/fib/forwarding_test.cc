/**
 * @file
 * Tests for the forwarding table and the RFC-1812 forwarding engine.
 */

#include <gtest/gtest.h>

#include "fib/forwarding_engine.hh"
#include "fib/forwarding_table.hh"

using namespace bgpbench;
using namespace bgpbench::fib;
using net::Ipv4Address;
using net::Prefix;

namespace
{

ForwardingTable
tableWithRoutes()
{
    ForwardingTable table;
    table.install(Prefix::fromString("10.0.0.0/8"),
                  FibEntry{Ipv4Address(10, 255, 0, 1), 1});
    table.install(Prefix::fromString("10.1.0.0/16"),
                  FibEntry{Ipv4Address(10, 255, 0, 2), 2});
    return table;
}

} // namespace

TEST(ForwardingTable, InstallReplaceRemoveCounters)
{
    ForwardingTable table;
    EXPECT_TRUE(table.install(Prefix::fromString("10.0.0.0/8"),
                              FibEntry{Ipv4Address(1, 1, 1, 1), 1}));
    EXPECT_FALSE(table.install(Prefix::fromString("10.0.0.0/8"),
                               FibEntry{Ipv4Address(2, 2, 2, 2), 2}));
    EXPECT_TRUE(table.remove(Prefix::fromString("10.0.0.0/8")));
    EXPECT_FALSE(table.remove(Prefix::fromString("10.0.0.0/8")));

    EXPECT_EQ(table.counters().installs, 1u);
    EXPECT_EQ(table.counters().replaces, 1u);
    EXPECT_EQ(table.counters().removes, 1u);
}

TEST(ForwardingTable, LookupCountsMisses)
{
    ForwardingTable table = tableWithRoutes();
    EXPECT_NE(table.lookup(Ipv4Address(10, 1, 2, 3)), nullptr);
    EXPECT_EQ(table.lookup(Ipv4Address(99, 0, 0, 1)), nullptr);
    EXPECT_EQ(table.counters().lookups, 2u);
    EXPECT_EQ(table.counters().lookupMisses, 1u);
}

TEST(ForwardingEngine, ForwardsValidPacket)
{
    ForwardingTable table = tableWithRoutes();
    ForwardingEngine engine(&table);

    auto pkt = net::makeDataPacket(Ipv4Address(192, 168, 0, 1),
                                   Ipv4Address(10, 1, 2, 3), 500);
    auto result = engine.process(pkt);

    EXPECT_TRUE(result.forwarded);
    EXPECT_EQ(result.nextHop, Ipv4Address(10, 255, 0, 2));
    EXPECT_EQ(result.egressInterface, 2u);
    EXPECT_GT(result.lookupNodesVisited, 0);
    EXPECT_EQ(pkt.header.ttl, 63);
    // Incremental checksum update kept the header valid.
    EXPECT_TRUE(pkt.checksumValid());
    EXPECT_EQ(engine.counters().forwarded, 1u);
    EXPECT_EQ(engine.counters().bytesForwarded, 500u);
}

TEST(ForwardingEngine, DropsBadChecksum)
{
    ForwardingTable table = tableWithRoutes();
    ForwardingEngine engine(&table);

    auto pkt = net::makeDataPacket(Ipv4Address(192, 168, 0, 1),
                                   Ipv4Address(10, 1, 2, 3), 100);
    pkt.header.headerChecksum ^= 0x1;
    auto result = engine.process(pkt);

    EXPECT_FALSE(result.forwarded);
    EXPECT_EQ(result.dropReason, DropReason::BadChecksum);
    EXPECT_EQ(engine.counters().badChecksum, 1u);
}

TEST(ForwardingEngine, DropsExpiredTtl)
{
    ForwardingTable table = tableWithRoutes();
    ForwardingEngine engine(&table);

    auto pkt = net::makeDataPacket(Ipv4Address(192, 168, 0, 1),
                                   Ipv4Address(10, 1, 2, 3), 100, 1);
    auto result = engine.process(pkt);
    EXPECT_FALSE(result.forwarded);
    EXPECT_EQ(result.dropReason, DropReason::TtlExpired);

    auto zero = net::makeDataPacket(Ipv4Address(192, 168, 0, 1),
                                    Ipv4Address(10, 1, 2, 3), 100, 0);
    result = engine.process(zero);
    EXPECT_EQ(result.dropReason, DropReason::TtlExpired);
    EXPECT_EQ(engine.counters().ttlExpired, 2u);
}

TEST(ForwardingEngine, DropsUnroutable)
{
    ForwardingTable table = tableWithRoutes();
    ForwardingEngine engine(&table);

    auto pkt = net::makeDataPacket(Ipv4Address(192, 168, 0, 1),
                                   Ipv4Address(172, 16, 0, 1), 100);
    auto result = engine.process(pkt);
    EXPECT_FALSE(result.forwarded);
    EXPECT_EQ(result.dropReason, DropReason::NoRoute);
    EXPECT_EQ(engine.counters().noRoute, 1u);
}

TEST(ForwardingEngine, MultiHopTtlChain)
{
    // A packet forwarded through several engines loses one TTL per
    // hop and stays checksum-valid throughout.
    ForwardingTable table = tableWithRoutes();
    ForwardingEngine engine(&table);

    auto pkt = net::makeDataPacket(Ipv4Address(192, 168, 0, 1),
                                   Ipv4Address(10, 1, 2, 3), 100, 5);
    for (int hop = 0; hop < 4; ++hop) {
        auto result = engine.process(pkt);
        ASSERT_TRUE(result.forwarded) << "hop " << hop;
        EXPECT_TRUE(pkt.checksumValid());
    }
    EXPECT_EQ(pkt.header.ttl, 1);
    auto result = engine.process(pkt);
    EXPECT_EQ(result.dropReason, DropReason::TtlExpired);
}

TEST(ForwardingEngine, RouteChangeTakesEffect)
{
    ForwardingTable table = tableWithRoutes();
    ForwardingEngine engine(&table);

    auto pkt = net::makeDataPacket(Ipv4Address(192, 168, 0, 1),
                                   Ipv4Address(10, 1, 2, 3), 100);
    EXPECT_EQ(engine.process(pkt).nextHop, Ipv4Address(10, 255, 0, 2));

    // Control plane replaces the /16's next hop.
    table.install(Prefix::fromString("10.1.0.0/16"),
                  FibEntry{Ipv4Address(10, 255, 0, 9), 3});
    auto pkt2 = net::makeDataPacket(Ipv4Address(192, 168, 0, 1),
                                    Ipv4Address(10, 1, 2, 3), 100);
    EXPECT_EQ(engine.process(pkt2).nextHop,
              Ipv4Address(10, 255, 0, 9));

    // Removing the /16 falls back to the /8.
    table.remove(Prefix::fromString("10.1.0.0/16"));
    auto pkt3 = net::makeDataPacket(Ipv4Address(192, 168, 0, 1),
                                    Ipv4Address(10, 1, 2, 3), 100);
    EXPECT_EQ(engine.process(pkt3).nextHop,
              Ipv4Address(10, 255, 0, 1));
}

TEST(ForwardingEngine, DropReasonNames)
{
    EXPECT_EQ(toString(DropReason::None), "none");
    EXPECT_EQ(toString(DropReason::BadChecksum), "bad-checksum");
    EXPECT_EQ(toString(DropReason::TtlExpired), "ttl-expired");
    EXPECT_EQ(toString(DropReason::NoRoute), "no-route");
}
