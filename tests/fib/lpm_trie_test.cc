/**
 * @file
 * Unit and property tests for the LPM trie (vs the linear oracle).
 */

#include <gtest/gtest.h>

#include "fib/lpm_trie.hh"
#include "workload/rng.hh"

using namespace bgpbench;
using fib::LinearLpm;
using fib::LpmTrie;
using net::Ipv4Address;
using net::Prefix;

TEST(LpmTrie, EmptyLookupMisses)
{
    LpmTrie<int> trie;
    EXPECT_EQ(trie.size(), 0u);
    EXPECT_EQ(trie.lookup(Ipv4Address(1, 2, 3, 4)), nullptr);
}

TEST(LpmTrie, InsertAndExact)
{
    LpmTrie<int> trie;
    EXPECT_TRUE(trie.insert(Prefix::fromString("10.0.0.0/8"), 1));
    EXPECT_FALSE(trie.insert(Prefix::fromString("10.0.0.0/8"), 2));
    EXPECT_EQ(trie.size(), 1u);
    ASSERT_NE(trie.exact(Prefix::fromString("10.0.0.0/8")), nullptr);
    EXPECT_EQ(*trie.exact(Prefix::fromString("10.0.0.0/8")), 2);
    EXPECT_EQ(trie.exact(Prefix::fromString("10.0.0.0/16")), nullptr);
}

TEST(LpmTrie, LongestMatchWins)
{
    LpmTrie<int> trie;
    trie.insert(Prefix::fromString("10.0.0.0/8"), 8);
    trie.insert(Prefix::fromString("10.1.0.0/16"), 16);
    trie.insert(Prefix::fromString("10.1.2.0/24"), 24);

    EXPECT_EQ(*trie.lookup(Ipv4Address(10, 1, 2, 3)), 24);
    EXPECT_EQ(*trie.lookup(Ipv4Address(10, 1, 9, 9)), 16);
    EXPECT_EQ(*trie.lookup(Ipv4Address(10, 9, 9, 9)), 8);
    EXPECT_EQ(trie.lookup(Ipv4Address(11, 0, 0, 1)), nullptr);
}

TEST(LpmTrie, DefaultRouteCatchesEverything)
{
    LpmTrie<int> trie;
    trie.insert(Prefix(), 0);
    EXPECT_EQ(*trie.lookup(Ipv4Address(1, 2, 3, 4)), 0);
    EXPECT_EQ(*trie.lookup(Ipv4Address(255, 255, 255, 255)), 0);
}

TEST(LpmTrie, HostRoute)
{
    LpmTrie<int> trie;
    trie.insert(Prefix::fromString("10.0.0.5/32"), 5);
    EXPECT_EQ(*trie.lookup(Ipv4Address(10, 0, 0, 5)), 5);
    EXPECT_EQ(trie.lookup(Ipv4Address(10, 0, 0, 6)), nullptr);
}

TEST(LpmTrie, RemoveExposesShorterPrefix)
{
    LpmTrie<int> trie;
    trie.insert(Prefix::fromString("10.0.0.0/8"), 8);
    trie.insert(Prefix::fromString("10.1.0.0/16"), 16);

    EXPECT_TRUE(trie.remove(Prefix::fromString("10.1.0.0/16")));
    EXPECT_FALSE(trie.remove(Prefix::fromString("10.1.0.0/16")));
    EXPECT_EQ(*trie.lookup(Ipv4Address(10, 1, 2, 3)), 8);
    EXPECT_EQ(trie.size(), 1u);
}

TEST(LpmTrie, RemoveMissingReturnsFalse)
{
    LpmTrie<int> trie;
    EXPECT_FALSE(trie.remove(Prefix::fromString("10.0.0.0/8")));
}

TEST(LpmTrie, VisitedNodeCountBounded)
{
    LpmTrie<int> trie;
    trie.insert(Prefix::fromString("10.1.2.3/32"), 1);
    int visited = 0;
    trie.lookup(Ipv4Address(10, 1, 2, 3), &visited);
    EXPECT_GE(visited, 32);
    EXPECT_LE(visited, 33);

    // A miss on a different top octet stops early.
    trie.lookup(Ipv4Address(192, 0, 0, 1), &visited);
    EXPECT_LE(visited, 8);
}

TEST(LpmTrie, EntriesRoundTrip)
{
    LpmTrie<int> trie;
    std::vector<std::pair<Prefix, int>> inserted = {
        {Prefix::fromString("10.0.0.0/8"), 1},
        {Prefix::fromString("10.128.0.0/9"), 2},
        {Prefix::fromString("192.168.1.0/24"), 3},
        {Prefix(), 4},
    };
    for (const auto &[p, v] : inserted)
        trie.insert(p, v);

    auto entries = trie.entries();
    ASSERT_EQ(entries.size(), inserted.size());
    for (const auto &[p, v] : inserted) {
        bool found = false;
        for (const auto &[ep, ev] : entries)
            found = found || (ep == p && ev == v);
        EXPECT_TRUE(found) << p.toString();
    }
}

/**
 * Property suite: random insert/remove/lookup traces agree with the
 * linear-scan oracle at every step.
 */
class LpmTrieOracleTest : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(LpmTrieOracleTest, MatchesLinearOracle)
{
    workload::Rng rng(GetParam());
    LpmTrie<uint32_t> trie;
    LinearLpm<uint32_t> oracle;
    std::vector<Prefix> pool;

    for (int step = 0; step < 1500; ++step) {
        int action = int(rng.below(10));
        if (action < 5 || pool.empty()) {
            // Insert: cluster prefixes to force shared trie paths.
            uint32_t base = uint32_t(rng.below(4)) << 30;
            Prefix p(Ipv4Address(base | uint32_t(rng.next() &
                                                 0x3fffffff)),
                     int(rng.range(4, 32)));
            uint32_t value = uint32_t(rng.next());
            EXPECT_EQ(trie.insert(p, value),
                      oracle.insert(p, value));
            pool.push_back(p);
        } else if (action < 7) {
            Prefix p = pool[rng.below(pool.size())];
            EXPECT_EQ(trie.remove(p), oracle.remove(p));
        } else {
            // Lookup near an existing prefix to hit interesting
            // boundaries, or anywhere.
            Ipv4Address probe;
            if (rng.below(2)) {
                Prefix p = pool[rng.below(pool.size())];
                probe = Ipv4Address(p.address().toUint32() |
                                    uint32_t(rng.next() & 0xff));
            } else {
                probe = Ipv4Address(uint32_t(rng.next()));
            }
            const uint32_t *a = trie.lookup(probe);
            const uint32_t *b = oracle.lookup(probe);
            ASSERT_EQ(a == nullptr, b == nullptr)
                << "step " << step << " probe " << probe.toString();
            if (a) {
                EXPECT_EQ(*a, *b);
            }
        }
        EXPECT_EQ(trie.size(), oracle.size());
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LpmTrieOracleTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));
