/**
 * @file
 * Tests of bgp::SharedPrefixTable and the tree-backed RIBs built on
 * it. The core guarantee under test: RIBs over a shared prefix table
 * behave exactly like the hash-map reference backend for every
 * operation (insert/replace/withdraw/iterate), while columns sharing
 * one table never interfere, and iteration order is deterministic and
 * identical across backends.
 */

#include <vector>

#include <gtest/gtest.h>

#include "bgp/attr_intern.hh"
#include "bgp/prefix_table.hh"
#include "bgp/rib.hh"
#include "workload/rng.hh"
#include "workload/route_set.hh"

using namespace bgpbench;

namespace
{

net::Prefix
pfx(const std::string &text)
{
    return net::Prefix::fromString(text);
}

bgp::PathAttributesPtr
attrs(uint32_t tag)
{
    bgp::PathAttributes a;
    a.origin = bgp::Origin::Igp;
    a.nextHop = net::Ipv4Address(10, 0, 0, 1);
    a.asPath =
        bgp::AsPath::sequence({65000, bgp::AsNumber(tag & 0xffff)});
    return bgp::makeAttributes(std::move(a));
}

bgp::Candidate
candidate(uint32_t tag)
{
    bgp::Candidate c;
    c.attributes = attrs(tag);
    c.peer = 1;
    c.peerRouterId = 100;
    return c;
}

/** Deterministic mixed-length prefix pool with frequent collisions. */
std::vector<net::Prefix>
prefixPool(size_t count, uint64_t seed)
{
    workload::Rng rng(seed);
    std::vector<net::Prefix> pool;
    pool.reserve(count);
    for (size_t i = 0; i < count; ++i) {
        int length = 8 + int(rng.below(25));
        pool.emplace_back(net::Ipv4Address(uint32_t(rng.next())),
                          length);
    }
    return pool;
}

} // namespace

TEST(SharedPrefixTable, AcquireRefcountsAndRecyclesSlots)
{
    bgp::SharedPrefixTable table;
    const auto p1 = pfx("10.0.0.0/8");
    const auto p2 = pfx("10.1.0.0/16");

    EXPECT_EQ(table.find(p1), bgp::SharedPrefixTable::npos);

    const auto s1 = table.acquire(p1);
    ASSERT_NE(s1, bgp::SharedPrefixTable::npos);
    EXPECT_EQ(table.find(p1), s1);
    EXPECT_EQ(table.prefixOf(s1), p1);
    EXPECT_EQ(table.prefixCount(), 1u);

    // A second acquire of the same prefix shares the slot.
    EXPECT_EQ(table.acquire(p1), s1);
    table.addRef(s1);
    EXPECT_EQ(table.prefixCount(), 1u);

    const auto s2 = table.acquire(p2);
    EXPECT_NE(s2, s1);

    // Three refs on s1: drop them one by one; the prefix must stay
    // findable until the last release.
    table.release(s1);
    table.release(s1);
    EXPECT_EQ(table.find(p1), s1);
    table.release(s1);
    EXPECT_EQ(table.find(p1), bgp::SharedPrefixTable::npos);
    EXPECT_EQ(table.prefixCount(), 1u);

    // The freed slot is recycled before the span grows.
    const size_t span = table.slotSpan();
    const auto s3 = table.acquire(pfx("192.168.0.0/24"));
    EXPECT_EQ(s3, s1);
    EXPECT_EQ(table.slotSpan(), span);
    EXPECT_EQ(table.prefixOf(s3), pfx("192.168.0.0/24"));
}

TEST(SharedPrefixTable, ColumnsShareStructureWithoutInterference)
{
    bgp::SharedPrefixTable table;
    bgp::AdjRibIn in_a(&table);
    bgp::AdjRibIn in_b(&table);

    const auto p = pfx("10.0.0.0/8");
    in_a.update(p, attrs(1), attrs(1));
    EXPECT_EQ(in_a.size(), 1u);
    // The same prefix, same table, other column: invisible.
    EXPECT_EQ(in_b.find(p), nullptr);

    in_b.update(p, attrs(2), attrs(2));
    EXPECT_EQ(table.prefixCount(), 1u); // structure stored once

    // Withdrawing from one column must not disturb the other.
    EXPECT_TRUE(in_a.withdraw(p));
    EXPECT_EQ(in_a.find(p), nullptr);
    ASSERT_NE(in_b.find(p), nullptr);
    EXPECT_EQ(in_b.find(p)->received, attrs(2));

    EXPECT_TRUE(in_b.withdraw(p));
    EXPECT_EQ(table.prefixCount(), 0u); // last ref frees the prefix
}

TEST(SharedPrefixTable, RecycledSlotDoesNotLeakStaleColumnEntries)
{
    bgp::SharedPrefixTable table;
    bgp::AdjRibIn in_a(&table);
    bgp::AdjRibIn in_b(&table);

    const auto old_prefix = pfx("10.0.0.0/8");
    in_a.update(old_prefix, attrs(1), attrs(1));
    in_b.update(old_prefix, attrs(2), attrs(2));
    in_a.withdraw(old_prefix);
    in_b.withdraw(old_prefix);

    // The slot is recycled for a different prefix; neither column may
    // resurrect the old entry through the reused slot.
    const auto new_prefix = pfx("172.16.0.0/12");
    in_a.update(new_prefix, attrs(3), attrs(3));
    EXPECT_EQ(in_a.find(old_prefix), nullptr);
    EXPECT_EQ(in_b.find(new_prefix), nullptr);
    ASSERT_NE(in_a.find(new_prefix), nullptr);
    EXPECT_EQ(in_a.find(new_prefix)->received, attrs(3));
}

TEST(SharedPrefixTable, RandomizedLockstepAgainstHashBackend)
{
    // One shared table with the three RIB kinds as columns (the
    // speaker's shape) against hash-map references, driven by one
    // random op sequence. Every return value and every iteration
    // must agree.
    bgp::SharedPrefixTable table;
    bgp::AdjRibIn tree_in(&table);
    bgp::LocRib tree_loc(&table);
    bgp::AdjRibOut tree_out(&table);
    bgp::AdjRibIn hash_in(nullptr);
    bgp::LocRib hash_loc(nullptr);
    bgp::AdjRibOut hash_out(nullptr);

    const auto pool = prefixPool(200, 9);
    workload::Rng rng(17);

    auto compareIteration = [&] {
        std::vector<std::pair<net::Prefix, const void *>> a, b;
        std::vector<net::Prefix> pa, pb;
        tree_in.forEach(
            [&](const net::Prefix &p, const bgp::AdjRibIn::Entry &e) {
                a.emplace_back(p, e.received.get());
            });
        hash_in.forEach(
            [&](const net::Prefix &p, const bgp::AdjRibIn::Entry &e) {
                b.emplace_back(p, e.received.get());
            });
        ASSERT_EQ(a, b);
        tree_loc.forEach(
            [&](const net::Prefix &p, const bgp::LocRib::Entry &) {
                pa.push_back(p);
            });
        hash_loc.forEach(
            [&](const net::Prefix &p, const bgp::LocRib::Entry &) {
                pb.push_back(p);
            });
        ASSERT_EQ(pa, pb);
        pa.clear();
        pb.clear();
        tree_out.forEach(
            [&](const net::Prefix &p, const bgp::PathAttributesPtr &) {
                pa.push_back(p);
            });
        hash_out.forEach(
            [&](const net::Prefix &p, const bgp::PathAttributesPtr &) {
                pb.push_back(p);
            });
        ASSERT_EQ(pa, pb);
    };

    for (int op = 0; op < 30000; ++op) {
        const net::Prefix &p = pool[rng.below(pool.size())];
        const uint32_t tag = uint32_t(rng.below(8));
        switch (rng.below(6)) {
          case 0:
            EXPECT_EQ(tree_in.update(p, attrs(tag), attrs(tag)),
                      hash_in.update(p, attrs(tag), attrs(tag)));
            break;
          case 1:
            EXPECT_EQ(tree_in.withdraw(p), hash_in.withdraw(p));
            break;
          case 2:
            EXPECT_EQ(tree_loc.select(p, candidate(tag)),
                      hash_loc.select(p, candidate(tag)));
            break;
          case 3:
            EXPECT_EQ(tree_loc.remove(p), hash_loc.remove(p));
            break;
          case 4:
            EXPECT_EQ(tree_out.advertise(p, attrs(tag)),
                      hash_out.advertise(p, attrs(tag)));
            break;
          case 5:
            EXPECT_EQ(tree_out.withdraw(p), hash_out.withdraw(p));
            break;
        }
        ASSERT_EQ(tree_in.size(), hash_in.size());
        ASSERT_EQ(tree_loc.size(), hash_loc.size());
        ASSERT_EQ(tree_out.size(), hash_out.size());
        if (op % 5000 == 4999)
            compareIteration();
    }
    compareIteration();

    // Point lookups agree over the whole pool at the final state.
    for (const auto &p : pool) {
        const auto *ta = tree_in.find(p);
        const auto *ha = hash_in.find(p);
        ASSERT_EQ(ta != nullptr, ha != nullptr);
        if (ta) {
            EXPECT_EQ(ta->received, ha->received);
        }
    }
}

TEST(SharedPrefixTable, IterationOrderDeterministicAt100k)
{
    // 100k-prefix table: both backends must produce the identical,
    // strictly ascending prefix sequence — the property the snapshot
    // and dump layers rely on instead of sorting.
    workload::RouteSetConfig config;
    config.count = 100000;
    config.seed = 23;
    const auto routes = workload::generateRouteSet(config);

    bgp::SharedPrefixTable table;
    bgp::LocRib tree_loc(&table);
    bgp::LocRib hash_loc(nullptr);
    tree_loc.reserve(routes.size());
    for (uint32_t i = 0; i < routes.size(); ++i) {
        tree_loc.select(routes[i].prefix, candidate(i % 32));
        hash_loc.select(routes[i].prefix, candidate(i % 32));
    }
    ASSERT_EQ(tree_loc.size(), hash_loc.size());

    std::vector<net::Prefix> tree_order, hash_order;
    tree_order.reserve(tree_loc.size());
    hash_order.reserve(hash_loc.size());
    tree_loc.forEach([&](const net::Prefix &p,
                         const bgp::LocRib::Entry &) {
        tree_order.push_back(p);
    });
    hash_loc.forEach([&](const net::Prefix &p,
                         const bgp::LocRib::Entry &) {
        hash_order.push_back(p);
    });
    ASSERT_EQ(tree_order.size(), hash_order.size());
    ASSERT_TRUE(tree_order == hash_order);
    for (size_t i = 1; i < tree_order.size(); ++i)
        ASSERT_TRUE(tree_order[i - 1] < tree_order[i]);

    // And a second, independently built tree over the same routes in
    // a different insertion order lands on the same sequence.
    bgp::SharedPrefixTable table2;
    bgp::LocRib tree2(&table2);
    for (size_t i = routes.size(); i-- > 0;)
        tree2.select(routes[i].prefix, candidate(uint32_t(i % 32)));
    std::vector<net::Prefix> tree2_order;
    tree2_order.reserve(tree2.size());
    tree2.forEach([&](const net::Prefix &p,
                      const bgp::LocRib::Entry &) {
        tree2_order.push_back(p);
    });
    ASSERT_TRUE(tree2_order == tree_order);
}
