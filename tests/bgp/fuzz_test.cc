/**
 * @file
 * Robustness ("fuzz") tests: the wire codec and the stream decoder
 * must never crash, read out of bounds, or loop on hostile input —
 * they either produce a message or a well-formed DecodeError.
 */

#include <gtest/gtest.h>

#include "bgp/message.hh"
#include "bgp/speaker.hh"
#include "workload/rng.hh"

using namespace bgpbench;
using namespace bgpbench::bgp;

namespace
{

std::vector<uint8_t>
randomBytes(workload::Rng &rng, size_t max_len)
{
    std::vector<uint8_t> bytes(rng.below(max_len + 1));
    for (auto &b : bytes)
        b = uint8_t(rng.next());
    return bytes;
}

/** A framed message with a valid header but random body. */
std::vector<uint8_t>
randomFramedMessage(workload::Rng &rng)
{
    size_t body = rng.below(200);
    net::ByteWriter w;
    w.writeFill(proto::markerBytes, 0xff);
    w.writeU16(uint16_t(proto::headerBytes + body));
    w.writeU8(uint8_t(rng.range(1, 5))); // valid type codes
    for (size_t i = 0; i < body; ++i)
        w.writeU8(uint8_t(rng.next()));
    return w.take();
}

UpdateMessage
sampleUpdate(workload::Rng &rng)
{
    UpdateMessage update;
    PathAttributes attrs;
    attrs.asPath = AsPath::sequence(
        {AsNumber(rng.range(1, 65000)), AsNumber(rng.range(1, 65000))});
    attrs.nextHop = net::Ipv4Address(uint32_t(rng.range(1, 1u << 30)));
    if (rng.below(2))
        attrs.med = uint32_t(rng.next());
    update.attributes = makeAttributes(std::move(attrs));
    int prefixes = int(rng.range(1, 12));
    for (int i = 0; i < prefixes; ++i) {
        update.nlri.emplace_back(
            net::Ipv4Address(uint32_t(rng.next())),
            int(rng.range(8, 32)));
    }
    return update;
}

OpenMessage
sampleOpen(workload::Rng &rng)
{
    OpenMessage open;
    open.myAs = AsNumber(rng.range(1, 65000));
    open.holdTimeSec = uint16_t(rng.below(400));
    open.bgpIdentifier = RouterId(rng.next());
    size_t opt = rng.below(16);
    for (size_t i = 0; i < opt; ++i)
        open.optionalParameters.push_back(uint8_t(rng.next()));
    return open;
}

NotificationMessage
sampleNotification(workload::Rng &rng)
{
    NotificationMessage notif;
    notif.errorCode = ErrorCode(rng.range(1, 6));
    notif.errorSubcode = uint8_t(rng.below(12));
    size_t data = rng.below(32);
    for (size_t i = 0; i < data; ++i)
        notif.data.push_back(uint8_t(rng.next()));
    return notif;
}

/**
 * encodedSize() must agree exactly with the bytes encodeMessage()
 * produces, and encodeSegment() must produce those same bytes —
 * the zero-copy transmit path sizes pool buffers from encodedSize().
 */
template <typename T>
void
expectSizeConsistent(const T &msg)
{
    auto wire = encodeMessage(msg);
    EXPECT_EQ(wire.size(), encodedSize(msg));
    auto segment = encodeSegment(msg);
    ASSERT_NE(segment, nullptr);
    EXPECT_TRUE(std::equal(wire.begin(), wire.end(),
                           segment->bytes().begin(),
                           segment->bytes().end()));
}

} // namespace

TEST(Fuzz, EncodedSizeMatchesEncodingForEveryMessageType)
{
    workload::Rng rng(137);
    for (int trial = 0; trial < 400; ++trial) {
        expectSizeConsistent(sampleOpen(rng));
        expectSizeConsistent(sampleUpdate(rng));
        expectSizeConsistent(KeepaliveMessage{});
        expectSizeConsistent(sampleNotification(rng));
        expectSizeConsistent(RouteRefreshMessage{});

        // The Message variant wrapper must agree with the concrete
        // overloads it dispatches to.
        Message variant = sampleUpdate(rng);
        expectSizeConsistent(variant);
        variant = sampleOpen(rng);
        expectSizeConsistent(variant);
        variant = sampleNotification(rng);
        expectSizeConsistent(variant);
        variant = KeepaliveMessage{};
        expectSizeConsistent(variant);
        variant = RouteRefreshMessage{};
        expectSizeConsistent(variant);
    }

    // Withdrawal-only and mixed UPDATEs exercise the withdrawn-routes
    // length arm that pure announcements never touch.
    for (int trial = 0; trial < 200; ++trial) {
        UpdateMessage update = sampleUpdate(rng);
        update.withdrawnRoutes = update.nlri;
        expectSizeConsistent(update);
        update.nlri.clear();
        update.attributes = nullptr;
        expectSizeConsistent(update);
    }
}

TEST(Fuzz, DecodeMessageSurvivesRandomBytes)
{
    workload::Rng rng(101);
    for (int trial = 0; trial < 5000; ++trial) {
        auto bytes = randomBytes(rng, 512);
        DecodeError error;
        auto msg = decodeMessage(bytes, error);
        // Either a message or an error; never both unset.
        EXPECT_TRUE(msg.has_value() || bool(error));
    }
}

TEST(Fuzz, DecodeMessageSurvivesRandomValidlyFramedBodies)
{
    workload::Rng rng(103);
    for (int trial = 0; trial < 5000; ++trial) {
        auto bytes = randomFramedMessage(rng);
        DecodeError error;
        auto msg = decodeMessage(bytes, error);
        EXPECT_TRUE(msg.has_value() || bool(error));
        if (!msg) {
            EXPECT_NE(error.code, ErrorCode::None);
        }
    }
}

TEST(Fuzz, SingleBitCorruptionNeverCrashesDecoder)
{
    workload::Rng rng(107);
    for (int trial = 0; trial < 400; ++trial) {
        auto wire = encodeMessage(sampleUpdate(rng));
        // Flip one random bit.
        size_t byte = rng.below(wire.size());
        wire[byte] ^= uint8_t(1u << rng.below(8));

        DecodeError error;
        auto msg = decodeMessage(wire, error);
        // Corruption may still decode (e.g., a flipped prefix bit is
        // a different but legal prefix); it must not crash, and an
        // error must be classified when reported.
        if (!msg) {
            EXPECT_NE(error.code, ErrorCode::None);
        }
    }
}

TEST(Fuzz, TruncationAtEveryLengthIsGraceful)
{
    workload::Rng rng(109);
    auto wire = encodeMessage(sampleUpdate(rng));
    for (size_t len = 0; len < wire.size(); ++len) {
        DecodeError error;
        std::span<const uint8_t> prefix(wire.data(), len);
        auto msg = decodeMessage(prefix, error);
        EXPECT_FALSE(msg.has_value()) << "decoded a truncation";
        EXPECT_TRUE(bool(error));
    }
}

TEST(Fuzz, StreamDecoderSurvivesGarbageStreams)
{
    workload::Rng rng(113);
    for (int trial = 0; trial < 300; ++trial) {
        StreamDecoder decoder;
        DecodeError error;
        size_t budget = 4096;
        while (budget > 0) {
            auto chunk = randomBytes(rng, 64);
            if (chunk.size() > budget)
                chunk.resize(budget);
            budget -= chunk.size();
            decoder.feed(chunk);
            // Drain; must terminate (bounded by buffered bytes).
            int safety = 1000;
            while (decoder.next(error) && --safety > 0) {
            }
            EXPECT_GT(safety, 0) << "decoder livelock";
            if (decoder.failed())
                break;
        }
    }
}

TEST(Fuzz, StreamDecoderInterleavedValidAndCorrupt)
{
    workload::Rng rng(127);
    for (int trial = 0; trial < 200; ++trial) {
        StreamDecoder decoder;
        DecodeError error;
        size_t decoded = 0;
        bool corrupted = false;
        for (int m = 0; m < 10 && !decoder.failed(); ++m) {
            auto wire = encodeMessage(sampleUpdate(rng));
            if (!corrupted && rng.below(4) == 0) {
                wire[rng.below(wire.size())] ^= 0xff;
                corrupted = true;
            }
            decoder.feed(wire);
            while (decoder.next(error))
                ++decoded;
        }
        if (!corrupted) {
            EXPECT_FALSE(decoder.failed());
            EXPECT_EQ(decoded, 10u);
        }
    }
}

TEST(Fuzz, SpeakerSurvivesHostilePeerBytes)
{
    // A speaker fed random bytes must answer with a NOTIFICATION and
    // drop the session, never crash.
    struct Sink : public SpeakerEvents
    {
        size_t notifications = 0;
        void
        onTransmit(PeerId, MessageType type, net::WireSegmentPtr,
                   size_t) override
        {
            notifications += type == MessageType::Notification;
        }
    };

    workload::Rng rng(131);
    for (int trial = 0; trial < 100; ++trial) {
        Sink sink;
        SpeakerConfig config;
        config.localAs = 65000;
        config.routerId = 1;
        config.localAddress = net::Ipv4Address(10, 0, 0, 1);
        BgpSpeaker speaker(config, &sink);

        PeerConfig peer;
        peer.id = 0;
        peer.asn = 65001;
        speaker.addPeer(peer);
        speaker.startPeer(0, 0);
        speaker.tcpEstablished(0, 0);

        // Hostile stream straight after our OPEN.
        for (int chunk = 0; chunk < 8; ++chunk)
            speaker.receiveBytes(0, randomBytes(rng, 128), 0);

        // The session is gone or still waiting for an OPEN; either
        // way the speaker's state is consistent.
        auto state = speaker.sessionState(0);
        EXPECT_TRUE(state == SessionState::Idle ||
                    state == SessionState::OpenSent)
            << toString(state);
    }
}
