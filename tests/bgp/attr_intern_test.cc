/**
 * @file
 * Tests for the attribute interner (hash-consing layer): canonical
 * pointer identity, hit/miss accounting, weak-reference eviction, and
 * the interaction with the decode boundary.
 */

#include <gtest/gtest.h>

#include "bgp/attr_intern.hh"
#include "bgp/message.hh"

using namespace bgpbench;
using namespace bgpbench::bgp;

namespace
{

PathAttributes
sample(uint32_t med = 50)
{
    PathAttributes a;
    a.asPath = AsPath::sequence({65001, 100, 200});
    a.nextHop = net::Ipv4Address(10, 0, 0, 9);
    a.med = med;
    a.communities = {0x00640001, 0x00640002};
    return a;
}

/** Restores the process-global interner around each test. */
class GlobalInterner : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        auto &interner = AttributeInterner::global();
        interner.clear();
        interner.resetStats();
        interner.setEnabled(true);
    }

    void
    TearDown() override
    {
        auto &interner = AttributeInterner::global();
        interner.setEnabled(true);
        interner.clear();
        interner.resetStats();
    }
};

} // namespace

TEST(AttrIntern, EqualValuesShareOneInstance)
{
    AttributeInterner interner;
    // The BGPBENCH_NO_INTERN env var only sets the default; these
    // tests pin the mode they exercise.
    interner.setEnabled(true);
    auto a = interner.intern(sample());
    auto b = interner.intern(sample());
    EXPECT_EQ(a.get(), b.get());
    EXPECT_TRUE(a->interned());
    EXPECT_TRUE(sameAttributeValue(a, b));
}

TEST(AttrIntern, DistinctValuesGetDistinctInstances)
{
    AttributeInterner interner;
    // The BGPBENCH_NO_INTERN env var only sets the default; these
    // tests pin the mode they exercise.
    interner.setEnabled(true);
    auto a = interner.intern(sample(50));
    auto b = interner.intern(sample(51));
    EXPECT_NE(a.get(), b.get());
    EXPECT_FALSE(sameAttributeValue(a, b));
}

TEST(AttrIntern, HitMissStatsAccumulate)
{
    AttributeInterner interner;
    // The BGPBENCH_NO_INTERN env var only sets the default; these
    // tests pin the mode they exercise.
    interner.setEnabled(true);
    auto a = interner.intern(sample(1));
    auto b = interner.intern(sample(1));
    auto c = interner.intern(sample(2));
    (void)a;
    (void)b;
    (void)c;

    auto stats = interner.stats();
    EXPECT_EQ(stats.lookups, 3u);
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 2u);
    EXPECT_DOUBLE_EQ(stats.hitRatio(), 1.0 / 3.0);
    EXPECT_EQ(stats.liveSets, 2u);
    EXPECT_GT(stats.bytesDeduplicated, 0u);
}

TEST(AttrIntern, DeadSetsAreEvicted)
{
    AttributeInterner interner;
    // The BGPBENCH_NO_INTERN env var only sets the default; these
    // tests pin the mode they exercise.
    interner.setEnabled(true);
    {
        auto a = interner.intern(sample(1));
        auto b = interner.intern(sample(2));
        EXPECT_EQ(interner.stats().liveSets, 2u);
    }
    // The interner only holds weak references: once the last route
    // drops its pointer, the set is gone and the slot reclaimable.
    EXPECT_EQ(interner.stats().liveSets, 0u);
    EXPECT_EQ(interner.sweepExpired(), 2u);
    EXPECT_EQ(interner.stats().trackedSets, 0u);
}

TEST(AttrIntern, ExpiredSlotIsReusedOnNextIntern)
{
    AttributeInterner interner;
    // The BGPBENCH_NO_INTERN env var only sets the default; these
    // tests pin the mode they exercise.
    interner.setEnabled(true);
    const PathAttributes *first = nullptr;
    {
        auto a = interner.intern(sample());
        first = a.get();
    }
    auto b = interner.intern(sample());
    // A new canonical instance is created (the old one died) and the
    // lookup counts as a miss, not a hit on a dead slot.
    EXPECT_TRUE(b->interned());
    auto stats = interner.stats();
    EXPECT_EQ(stats.misses, 2u);
    EXPECT_EQ(stats.hits, 0u);
    EXPECT_EQ(stats.liveSets, 1u);
    (void)first;
}

TEST(AttrIntern, TableStaysBoundedAcrossChurn)
{
    AttributeInterner interner;
    // The BGPBENCH_NO_INTERN env var only sets the default; these
    // tests pin the mode they exercise.
    interner.setEnabled(true);
    // Session-reset churn: waves of distinct sets that all die. The
    // amortised sweep keeps the tracked-slot count bounded instead of
    // growing by one slot per dead set forever.
    for (uint32_t wave = 0; wave < 50; ++wave) {
        std::vector<PathAttributesPtr> alive;
        for (uint32_t i = 0; i < 200; ++i)
            alive.push_back(interner.intern(sample(wave * 1000 + i)));
    }
    auto stats = interner.stats();
    EXPECT_EQ(stats.lookups, 50u * 200u);
    EXPECT_EQ(stats.liveSets, 0u);
    EXPECT_LT(stats.trackedSets, 4096u);
    EXPECT_GT(stats.sweeps, 0u);
}

TEST(AttrIntern, DisabledModeKeepsValueEquality)
{
    AttributeInterner interner;
    // The BGPBENCH_NO_INTERN env var only sets the default; these
    // tests pin the mode they exercise.
    interner.setEnabled(true);
    interner.setEnabled(false);
    auto a = interner.intern(sample());
    auto b = interner.intern(sample());
    EXPECT_NE(a.get(), b.get());
    EXPECT_FALSE(a->interned());
    EXPECT_FALSE(b->interned());
    // Equality falls back to the hash-guarded deep comparison.
    EXPECT_TRUE(sameAttributeValue(a, b));
    EXPECT_EQ(interner.stats().lookups, 0u);
}

TEST(AttrIntern, ClearUnmarksSurvivorsSoFastPathCannotMisfire)
{
    AttributeInterner interner;
    // The BGPBENCH_NO_INTERN env var only sets the default; these
    // tests pin the mode they exercise.
    interner.setEnabled(true);
    auto a = interner.intern(sample());
    ASSERT_TRUE(a->interned());
    interner.clear();
    EXPECT_FALSE(a->interned());

    // A set interned after the clear is a different instance with the
    // same value; the two-interned-instances-are-unequal shortcut
    // must not reject the comparison.
    auto b = interner.intern(sample());
    EXPECT_NE(a.get(), b.get());
    EXPECT_TRUE(sameAttributeValue(a, b));
}

TEST(AttrIntern, CopiesStartColdSoMutatedCopiesReinternCorrectly)
{
    AttributeInterner interner;
    // The BGPBENCH_NO_INTERN env var only sets the default; these
    // tests pin the mode they exercise.
    interner.setEnabled(true);
    auto a = interner.intern(sample());
    ASSERT_NE(a->hash(), 0u);

    // Copying a canonical (the reflection / eBGP-export / policy
    // copy-and-mutate pattern) must not drag along the cached hash or
    // the canonical mark: the copy is about to become a different
    // value.
    PathAttributes mutated = *a;
    EXPECT_FALSE(mutated.interned());
    mutated.med = 9999;
    EXPECT_NE(mutated.hash(), a->hash());

    auto b = interner.intern(std::move(mutated));
    EXPECT_NE(a.get(), b.get());
    EXPECT_FALSE(sameAttributeValue(a, b));
    // The mutated value landed in its own bucket: re-interning it
    // finds the canonical again.
    PathAttributes again = *a;
    again.med = 9999;
    EXPECT_EQ(interner.intern(std::move(again)).get(), b.get());

    // An *unchanged* copy still deduplicates back to the canonical.
    PathAttributes unchanged = *a;
    EXPECT_EQ(interner.intern(std::move(unchanged)).get(), a.get());

    // And assignment resets the destination's state just like
    // construction does.
    PathAttributes assigned;
    assigned = *a;
    EXPECT_FALSE(assigned.interned());
    assigned.localPref = 77;
    EXPECT_FALSE(sameAttributeValue(
        a, std::make_shared<const PathAttributes>(assigned)));
}

TEST(AttrIntern, CrossInternerCanonicalsCompareByValue)
{
    AttributeInterner one;
    AttributeInterner two;
    // The BGPBENCH_NO_INTERN env var only sets the default; these
    // tests pin the mode they exercise.
    one.setEnabled(true);
    two.setEnabled(true);

    // Equal values canonicalised by *different* interner instances
    // are distinct pointers, both marked interned — the same-owner
    // guard must keep them comparing equal by value.
    auto a = one.intern(sample());
    auto b = two.intern(sample());
    ASSERT_NE(a.get(), b.get());
    ASSERT_TRUE(a->interned());
    ASSERT_TRUE(b->interned());
    EXPECT_NE(a->internOwner(), b->internOwner());
    EXPECT_TRUE(sameAttributeValue(a, b));

    // Distinct values stay unequal in every combination.
    auto c = two.intern(sample(51));
    EXPECT_FALSE(sameAttributeValue(a, c));
    EXPECT_FALSE(sameAttributeValue(b, c));
}

TEST(AttrIntern, DisableToggleKeepsMarkedVsUnmarkedEquality)
{
    AttributeInterner interner;
    // The BGPBENCH_NO_INTERN env var only sets the default; these
    // tests pin the mode they exercise.
    interner.setEnabled(true);
    auto marked = interner.intern(sample());
    ASSERT_TRUE(marked->interned());

    // After disabling, new equal-valued sets come out unmarked; the
    // marked-vs-unmarked comparison must fall through to the deep
    // compare and report equality.
    interner.setEnabled(false);
    auto unmarked = interner.intern(sample());
    ASSERT_FALSE(unmarked->interned());
    EXPECT_NE(marked.get(), unmarked.get());
    EXPECT_TRUE(sameAttributeValue(marked, unmarked));

    // Re-enabling reuses the still-live canonical.
    interner.setEnabled(true);
    EXPECT_EQ(interner.intern(sample()).get(), marked.get());
}

TEST(AttrIntern, HashIsCachedAndNonZero)
{
    auto a = std::make_shared<const PathAttributes>(sample());
    uint64_t h1 = a->hash();
    uint64_t h2 = a->hash();
    EXPECT_NE(h1, 0u);
    EXPECT_EQ(h1, h2);

    auto b = std::make_shared<const PathAttributes>(sample());
    EXPECT_EQ(b->hash(), h1);
    auto c = std::make_shared<const PathAttributes>(sample(51));
    EXPECT_NE(c->hash(), h1);
}

TEST_F(GlobalInterner, DecodeBoundaryDeduplicatesAcrossPeers)
{
    // The same UPDATE arriving from two peers (two separate decode
    // calls) must yield one shared attribute instance.
    UpdateMessage msg;
    msg.attributes = makeAttributes(sample());
    msg.nlri = {net::Prefix(net::Ipv4Address(10, 1, 1, 0), 24)};
    auto wire = encodeMessage(msg);

    DecodeError error;
    auto from_peer1 = decodeMessage(wire, error);
    ASSERT_TRUE(from_peer1);
    auto from_peer2 = decodeMessage(wire, error);
    ASSERT_TRUE(from_peer2);

    const auto &u1 = std::get<UpdateMessage>(*from_peer1);
    const auto &u2 = std::get<UpdateMessage>(*from_peer2);
    EXPECT_EQ(u1.attributes.get(), u2.attributes.get());
    EXPECT_EQ(u1.attributes.get(), msg.attributes.get());
    EXPECT_GE(AttributeInterner::global().stats().hits, 2u);
}

TEST_F(GlobalInterner, MakeAttributesCanonicalises)
{
    auto a = makeAttributes(sample());
    auto b = makeAttributes(sample());
    EXPECT_EQ(a.get(), b.get());
    EXPECT_TRUE(a->interned());
}
