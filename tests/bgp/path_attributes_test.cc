/**
 * @file
 * Tests for path-attribute block encoding/decoding, including the
 * RFC 4271 section 6.3 validation rules.
 */

#include <gtest/gtest.h>

#include "bgp/path_attributes.hh"
#include "workload/rng.hh"

using namespace bgpbench;
using bgp::AsPath;
using bgp::DecodeError;
using bgp::PathAttributes;

namespace
{

PathAttributes
baseAttrs()
{
    PathAttributes attrs;
    attrs.origin = bgp::Origin::Igp;
    attrs.asPath = AsPath::sequence({100, 200});
    attrs.nextHop = net::Ipv4Address(10, 0, 0, 1);
    return attrs;
}

std::optional<PathAttributes>
roundTrip(const PathAttributes &attrs, DecodeError &error)
{
    net::ByteWriter w;
    attrs.encode(w);
    auto bytes = w.take();
    net::ByteReader r(bytes);
    return PathAttributes::decode(r, error);
}

} // namespace

TEST(PathAttributes, MandatoryOnlyRoundTrip)
{
    DecodeError error;
    auto decoded = roundTrip(baseAttrs(), error);
    ASSERT_TRUE(decoded.has_value()) << error.detail;
    EXPECT_EQ(*decoded, baseAttrs());
}

TEST(PathAttributes, AllAttributesRoundTrip)
{
    PathAttributes attrs = baseAttrs();
    attrs.origin = bgp::Origin::Incomplete;
    attrs.med = 50;
    attrs.localPref = 200;
    attrs.atomicAggregate = true;
    attrs.aggregator =
        bgp::Aggregator{300, net::Ipv4Address(10, 9, 9, 9)};
    attrs.communities = {0x00640001, 0x00640002};

    DecodeError error;
    auto decoded = roundTrip(attrs, error);
    ASSERT_TRUE(decoded.has_value()) << error.detail;
    EXPECT_EQ(*decoded, attrs);
}

TEST(PathAttributes, EncodedSizeMatchesEncoding)
{
    PathAttributes attrs = baseAttrs();
    attrs.med = 1;
    attrs.communities = {1, 2, 3};
    net::ByteWriter w;
    attrs.encode(w);
    EXPECT_EQ(w.size(), attrs.encodedSize());
}

TEST(PathAttributes, MissingMandatoryRejected)
{
    // Encode only an ORIGIN attribute by hand.
    net::ByteWriter w;
    w.writeU8(0x40); // well-known transitive
    w.writeU8(1);    // ORIGIN
    w.writeU8(1);
    w.writeU8(0);
    auto bytes = w.take();
    net::ByteReader r(bytes);
    DecodeError error;
    EXPECT_FALSE(PathAttributes::decode(r, error).has_value());
    EXPECT_EQ(error.code, bgp::ErrorCode::UpdateMessageError);
    EXPECT_EQ(error.subcode,
              uint8_t(bgp::UpdateSubcode::MissingWellKnownAttribute));
}

TEST(PathAttributes, BadOriginValueRejected)
{
    net::ByteWriter w;
    w.writeU8(0x40);
    w.writeU8(1);
    w.writeU8(1);
    w.writeU8(9); // invalid origin
    auto bytes = w.take();
    net::ByteReader r(bytes);
    DecodeError error;
    EXPECT_FALSE(PathAttributes::decode(r, error).has_value());
    EXPECT_EQ(error.subcode,
              uint8_t(bgp::UpdateSubcode::InvalidOriginAttribute));
}

TEST(PathAttributes, DuplicateAttributeRejected)
{
    PathAttributes attrs = baseAttrs();
    net::ByteWriter w;
    attrs.encode(w);
    attrs.encode(w); // every attribute now appears twice
    auto bytes = w.take();
    net::ByteReader r(bytes);
    DecodeError error;
    EXPECT_FALSE(PathAttributes::decode(r, error).has_value());
    EXPECT_EQ(error.subcode,
              uint8_t(bgp::UpdateSubcode::MalformedAttributeList));
}

TEST(PathAttributes, WrongFlagsRejected)
{
    net::ByteWriter w;
    w.writeU8(0x80); // ORIGIN marked optional: wrong
    w.writeU8(1);
    w.writeU8(1);
    w.writeU8(0);
    auto bytes = w.take();
    net::ByteReader r(bytes);
    DecodeError error;
    EXPECT_FALSE(PathAttributes::decode(r, error).has_value());
    EXPECT_EQ(error.subcode,
              uint8_t(bgp::UpdateSubcode::AttributeFlagsError));
}

TEST(PathAttributes, AttributeOverrunRejected)
{
    net::ByteWriter w;
    w.writeU8(0x40);
    w.writeU8(1);
    w.writeU8(200); // claims 200 value bytes, none present
    auto bytes = w.take();
    net::ByteReader r(bytes);
    DecodeError error;
    EXPECT_FALSE(PathAttributes::decode(r, error).has_value());
    EXPECT_EQ(error.subcode,
              uint8_t(bgp::UpdateSubcode::AttributeLengthError));
}

TEST(PathAttributes, ZeroNextHopRejected)
{
    PathAttributes attrs = baseAttrs();
    attrs.nextHop = net::Ipv4Address();
    DecodeError error;
    EXPECT_FALSE(roundTrip(attrs, error).has_value());
    EXPECT_EQ(error.subcode,
              uint8_t(bgp::UpdateSubcode::InvalidNextHopAttribute));
}

TEST(PathAttributes, UnknownOptionalAttributeSkipped)
{
    PathAttributes attrs = baseAttrs();
    net::ByteWriter w;
    attrs.encode(w);
    // Append an unknown optional transitive attribute (type 99).
    w.writeU8(0xc0);
    w.writeU8(99);
    w.writeU8(2);
    w.writeU16(0xbeef);

    auto bytes = w.take();
    net::ByteReader r(bytes);
    DecodeError error;
    auto decoded = PathAttributes::decode(r, error);
    ASSERT_TRUE(decoded.has_value()) << error.detail;
    EXPECT_EQ(*decoded, attrs);
}

TEST(PathAttributes, UnknownWellKnownAttributeRejected)
{
    PathAttributes attrs = baseAttrs();
    net::ByteWriter w;
    attrs.encode(w);
    w.writeU8(0x40); // well-known flag, unknown type
    w.writeU8(99);
    w.writeU8(0);

    auto bytes = w.take();
    net::ByteReader r(bytes);
    DecodeError error;
    EXPECT_FALSE(PathAttributes::decode(r, error).has_value());
    EXPECT_EQ(
        error.subcode,
        uint8_t(bgp::UpdateSubcode::UnrecognizedWellKnownAttribute));
}

TEST(PathAttributes, CommunitiesSortedOnDecode)
{
    PathAttributes attrs = baseAttrs();
    attrs.communities = {5, 1, 3}; // encode() writes them as given
    net::ByteWriter w;
    attrs.encode(w);
    auto bytes = w.take();
    net::ByteReader r(bytes);
    DecodeError error;
    auto decoded = PathAttributes::decode(r, error);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->communities, (std::vector<uint32_t>{1, 3, 5}));
}

TEST(PathAttributes, LongAsPathUsesExtendedLength)
{
    PathAttributes attrs = baseAttrs();
    std::vector<bgp::AsNumber> long_path;
    for (int i = 0; i < 200; ++i)
        long_path.push_back(bgp::AsNumber(1000 + i));
    attrs.asPath = AsPath::sequence(long_path);
    ASSERT_GT(attrs.asPath.encodedValueSize(), 255u);

    DecodeError error;
    auto decoded = roundTrip(attrs, error);
    ASSERT_TRUE(decoded.has_value()) << error.detail;
    EXPECT_EQ(decoded->asPath, attrs.asPath);
}

/** Property: random attribute sets survive the wire unchanged. */
TEST(PathAttributesProperty, RandomRoundTrip)
{
    workload::Rng rng(31);
    for (int trial = 0; trial < 300; ++trial) {
        PathAttributes attrs;
        attrs.origin = bgp::Origin(rng.range(0, 2));
        std::vector<bgp::AsNumber> path;
        int hops = int(rng.range(1, 8));
        for (int i = 0; i < hops; ++i)
            path.push_back(bgp::AsNumber(rng.range(1, 65535)));
        attrs.asPath = AsPath::sequence(path);
        attrs.nextHop =
            net::Ipv4Address(uint32_t(rng.range(1, 0xfffffffe)));
        if (rng.below(2))
            attrs.med = uint32_t(rng.next());
        if (rng.below(2))
            attrs.localPref = uint32_t(rng.next());
        attrs.atomicAggregate = rng.below(2);
        if (rng.below(3) == 0) {
            attrs.aggregator = bgp::Aggregator{
                bgp::AsNumber(rng.range(1, 65535)),
                net::Ipv4Address(uint32_t(rng.next()))};
        }
        int communities = int(rng.range(0, 5));
        for (int i = 0; i < communities; ++i)
            attrs.communities.push_back(uint32_t(rng.next()));
        std::sort(attrs.communities.begin(), attrs.communities.end());
        attrs.communities.erase(std::unique(attrs.communities.begin(),
                                            attrs.communities.end()),
                                attrs.communities.end());

        DecodeError error;
        auto decoded = roundTrip(attrs, error);
        ASSERT_TRUE(decoded.has_value())
            << "trial " << trial << ": " << error.detail;
        EXPECT_EQ(*decoded, attrs) << "trial " << trial;
    }
}
