/**
 * @file
 * Tests for the BGP message codec and the TCP stream decoder.
 */

#include <gtest/gtest.h>

#include "bgp/message.hh"
#include "workload/rng.hh"

using namespace bgpbench;
using namespace bgpbench::bgp;

namespace
{

PathAttributesPtr
sampleAttrs(uint16_t first_as = 100)
{
    PathAttributes attrs;
    attrs.asPath = AsPath::sequence({first_as, 200});
    attrs.nextHop = net::Ipv4Address(10, 0, 0, 2);
    return makeAttributes(std::move(attrs));
}

Message
decodeOk(const std::vector<uint8_t> &wire)
{
    DecodeError error;
    auto msg = decodeMessage(wire, error);
    EXPECT_TRUE(msg.has_value()) << error.detail;
    return msg.value_or(Message(KeepaliveMessage{}));
}

} // namespace

TEST(MessageCodec, KeepaliveRoundTrip)
{
    auto wire = encodeMessage(KeepaliveMessage{});
    EXPECT_EQ(wire.size(), proto::headerBytes);
    auto msg = decodeOk(wire);
    EXPECT_EQ(messageType(msg), MessageType::Keepalive);
}

TEST(MessageCodec, OpenRoundTrip)
{
    OpenMessage open;
    open.myAs = 65001;
    open.holdTimeSec = 90;
    open.bgpIdentifier = 0x0a000001;

    auto wire = encodeMessage(open);
    auto msg = decodeOk(wire);
    ASSERT_EQ(messageType(msg), MessageType::Open);
    const auto &decoded = std::get<OpenMessage>(msg);
    EXPECT_EQ(decoded.version, proto::version);
    EXPECT_EQ(decoded.myAs, 65001);
    EXPECT_EQ(decoded.holdTimeSec, 90);
    EXPECT_EQ(decoded.bgpIdentifier, 0x0a000001u);
}

TEST(MessageCodec, NotificationRoundTrip)
{
    NotificationMessage notif;
    notif.errorCode = ErrorCode::UpdateMessageError;
    notif.errorSubcode = 5;
    notif.data = {1, 2, 3};

    auto msg = decodeOk(encodeMessage(notif));
    ASSERT_EQ(messageType(msg), MessageType::Notification);
    const auto &decoded = std::get<NotificationMessage>(msg);
    EXPECT_EQ(decoded.errorCode, ErrorCode::UpdateMessageError);
    EXPECT_EQ(decoded.errorSubcode, 5);
    EXPECT_EQ(decoded.data, (std::vector<uint8_t>{1, 2, 3}));
}

TEST(MessageCodec, UpdateAnnounceRoundTrip)
{
    UpdateMessage update;
    update.attributes = sampleAttrs();
    update.nlri = {net::Prefix::fromString("10.1.0.0/16"),
                   net::Prefix::fromString("10.2.3.0/24")};

    auto wire = encodeMessage(update);
    EXPECT_EQ(wire.size(), encodedSize(update));

    auto msg = decodeOk(wire);
    ASSERT_EQ(messageType(msg), MessageType::Update);
    const auto &decoded = std::get<UpdateMessage>(msg);
    EXPECT_EQ(decoded.nlri, update.nlri);
    ASSERT_TRUE(decoded.attributes);
    EXPECT_EQ(*decoded.attributes, *update.attributes);
    EXPECT_TRUE(decoded.withdrawnRoutes.empty());
    EXPECT_EQ(decoded.transactionCount(), 2u);
}

TEST(MessageCodec, UpdateWithdrawRoundTrip)
{
    UpdateMessage update;
    update.withdrawnRoutes = {net::Prefix::fromString("10.1.0.0/16")};

    auto msg = decodeOk(encodeMessage(update));
    const auto &decoded = std::get<UpdateMessage>(msg);
    EXPECT_EQ(decoded.withdrawnRoutes, update.withdrawnRoutes);
    EXPECT_FALSE(decoded.attributes);
}

TEST(MessageCodec, UpdateMixedRoundTrip)
{
    UpdateMessage update;
    update.withdrawnRoutes = {net::Prefix::fromString("10.9.0.0/16")};
    update.attributes = sampleAttrs();
    update.nlri = {net::Prefix::fromString("10.1.0.0/16")};

    auto msg = decodeOk(encodeMessage(update));
    const auto &decoded = std::get<UpdateMessage>(msg);
    EXPECT_EQ(decoded.transactionCount(), 2u);
    EXPECT_EQ(decoded.withdrawnRoutes, update.withdrawnRoutes);
    EXPECT_EQ(decoded.nlri, update.nlri);
}

TEST(MessageCodec, BadMarkerRejected)
{
    auto wire = encodeMessage(KeepaliveMessage{});
    wire[3] = 0x00;
    DecodeError error;
    EXPECT_FALSE(decodeMessage(wire, error).has_value());
    EXPECT_EQ(error.code, ErrorCode::MessageHeaderError);
    EXPECT_EQ(
        error.subcode,
        uint8_t(HeaderSubcode::ConnectionNotSynchronized));
}

TEST(MessageCodec, LengthMismatchRejected)
{
    auto wire = encodeMessage(KeepaliveMessage{});
    wire[17] = 50; // claim longer than actual
    DecodeError error;
    EXPECT_FALSE(decodeMessage(wire, error).has_value());
    EXPECT_EQ(error.subcode,
              uint8_t(HeaderSubcode::BadMessageLength));
}

TEST(MessageCodec, BadTypeRejected)
{
    auto wire = encodeMessage(KeepaliveMessage{});
    wire[18] = 42;
    DecodeError error;
    EXPECT_FALSE(decodeMessage(wire, error).has_value());
    EXPECT_EQ(error.subcode, uint8_t(HeaderSubcode::BadMessageType));
}

TEST(MessageCodec, NlriWithoutAttributesRejected)
{
    // Hand-build an UPDATE with NLRI but an empty attribute block.
    net::ByteWriter w;
    w.writeFill(proto::markerBytes, 0xff);
    size_t len_off = w.size();
    w.writeU16(0);
    w.writeU8(uint8_t(MessageType::Update));
    w.writeU16(0); // no withdrawals
    w.writeU16(0); // no attributes
    w.writeU8(24); // one /24 prefix
    w.writeU8(10);
    w.writeU8(1);
    w.writeU8(2);
    w.patchU16(len_off, uint16_t(w.size()));

    DecodeError error;
    EXPECT_FALSE(decodeMessage(w.bytes(), error).has_value());
    EXPECT_EQ(error.subcode,
              uint8_t(UpdateSubcode::MissingWellKnownAttribute));
}

TEST(MessageCodec, BadPrefixLengthRejected)
{
    UpdateMessage update;
    update.withdrawnRoutes = {net::Prefix::fromString("10.0.0.0/8")};
    auto wire = encodeMessage(update);
    // Withdrawn block starts after header + 2-byte length; corrupt
    // the prefix length octet to 60.
    wire[proto::headerBytes + 2] = 60;
    DecodeError error;
    EXPECT_FALSE(decodeMessage(wire, error).has_value());
    EXPECT_EQ(error.code, ErrorCode::UpdateMessageError);
}

TEST(MessageCodec, OpenBadVersionRejected)
{
    OpenMessage open;
    open.myAs = 1;
    open.bgpIdentifier = 1;
    auto wire = encodeMessage(open);
    wire[proto::headerBytes] = 3; // BGP-3
    DecodeError error;
    EXPECT_FALSE(decodeMessage(wire, error).has_value());
    EXPECT_EQ(error.code, ErrorCode::OpenMessageError);
    EXPECT_EQ(error.subcode,
              uint8_t(OpenSubcode::UnsupportedVersionNumber));
}

TEST(MessageCodec, OpenBadHoldTimeRejected)
{
    OpenMessage open;
    open.myAs = 1;
    open.bgpIdentifier = 1;
    open.holdTimeSec = 2; // RFC 4271: 1 and 2 are illegal
    DecodeError error;
    EXPECT_FALSE(decodeMessage(encodeMessage(open), error).has_value());
    EXPECT_EQ(error.subcode,
              uint8_t(OpenSubcode::UnacceptableHoldTime));
}

TEST(MessageCodec, OpenZeroAsRejected)
{
    OpenMessage open;
    open.myAs = 0;
    open.bgpIdentifier = 1;
    DecodeError error;
    EXPECT_FALSE(decodeMessage(encodeMessage(open), error).has_value());
    EXPECT_EQ(error.subcode, uint8_t(OpenSubcode::BadPeerAs));
}

TEST(MessageCodec, NlriEncodingUsesMinimumOctets)
{
    UpdateMessage update;
    update.attributes = sampleAttrs();
    update.nlri = {net::Prefix::fromString("10.0.0.0/8")};
    // /8 prefix needs 1 octet: total = header + 2 + 2 + attrs + 2.
    size_t expected = proto::headerBytes + 4 +
                      update.attributes->encodedSize() + 2;
    EXPECT_EQ(encodeMessage(update).size(), expected);
}

TEST(StreamDecoder, ReassemblesSplitMessages)
{
    auto wire1 = encodeMessage(KeepaliveMessage{});
    OpenMessage open;
    open.myAs = 7;
    open.bgpIdentifier = 9;
    auto wire2 = encodeMessage(open);

    std::vector<uint8_t> stream(wire1);
    stream.insert(stream.end(), wire2.begin(), wire2.end());

    StreamDecoder decoder;
    DecodeError error;

    // Feed one byte at a time; messages appear exactly when complete.
    size_t decoded = 0;
    for (size_t i = 0; i < stream.size(); ++i) {
        decoder.feed(std::span(&stream[i], 1));
        while (auto msg = decoder.next(error))
            ++decoded;
        EXPECT_FALSE(error) << error.detail;
    }
    EXPECT_EQ(decoded, 2u);
    EXPECT_EQ(decoder.bufferedBytes(), 0u);
}

TEST(StreamDecoder, CoalescedFeedYieldsAllMessages)
{
    std::vector<uint8_t> stream;
    for (int i = 0; i < 5; ++i) {
        auto wire = encodeMessage(KeepaliveMessage{});
        stream.insert(stream.end(), wire.begin(), wire.end());
    }
    StreamDecoder decoder;
    decoder.feed(stream);
    DecodeError error;
    int count = 0;
    while (decoder.next(error))
        ++count;
    EXPECT_EQ(count, 5);
    EXPECT_FALSE(error);
}

TEST(StreamDecoder, BadFramingIsSticky)
{
    StreamDecoder decoder;
    std::vector<uint8_t> garbage(proto::headerBytes, 0xff);
    garbage[16] = 0; // framed length 5: illegal
    garbage[17] = 5;
    decoder.feed(garbage);

    DecodeError error;
    EXPECT_FALSE(decoder.next(error).has_value());
    EXPECT_TRUE(bool(error));
    EXPECT_TRUE(decoder.failed());

    // Even valid bytes afterwards cannot resynchronise the stream.
    decoder.feed(encodeMessage(KeepaliveMessage{}));
    EXPECT_FALSE(decoder.next(error).has_value());
}

TEST(StreamDecoder, PartialMessageNeedsMoreBytes)
{
    auto wire = encodeMessage(KeepaliveMessage{});
    StreamDecoder decoder;
    decoder.feed(std::span(wire.data(), wire.size() - 1));
    DecodeError error;
    EXPECT_FALSE(decoder.next(error).has_value());
    EXPECT_FALSE(error);
    decoder.feed(std::span(wire.data() + wire.size() - 1, 1));
    EXPECT_TRUE(decoder.next(error).has_value());
}

TEST(StreamDecoder, StagingStaysBoundedUnderSustainedFeeding)
{
    // Buffer-hygiene regression: a long-lived session feeding
    // boundary-straddling frames forever must not let the staging
    // buffer's footprint (including already-consumed bytes) grow
    // without bound — consumed bytes must be compacted away.
    UpdateMessage update;
    update.attributes = sampleAttrs(100);
    for (int p = 0; p < 40; ++p) {
        update.nlri.emplace_back(
            net::Ipv4Address(10, 20, uint8_t(p), 0), 24);
    }
    auto wire = encodeMessage(update);
    ASSERT_GT(wire.size(), 64u);

    StreamDecoder decoder;
    DecodeError error;
    size_t decoded = 0;
    size_t peak_staging = 0;
    // ~1 MB of traffic in ragged chunks that never align to frames.
    for (int round = 0; round < 4000; ++round) {
        size_t pos = 0;
        while (pos < wire.size()) {
            size_t chunk = std::min<size_t>(61, wire.size() - pos);
            decoder.feed(std::span(&wire[pos], chunk));
            pos += chunk;
            while (decoder.next(error))
                ++decoded;
            ASSERT_FALSE(error) << error.detail;
            peak_staging =
                std::max(peak_staging, decoder.stagingBytes());
        }
    }
    EXPECT_EQ(decoded, 4000u);
    EXPECT_EQ(decoder.bufferedBytes(), 0u);
    // Bounded by the compaction threshold plus one maximum message,
    // regardless of how much traffic flowed.
    EXPECT_LE(peak_staging, 4096u + proto::maxMessageBytes);
}

TEST(StreamDecoder, SegmentFeedDecodesWithoutStaging)
{
    // Whole frames fed as shared segments must decode straight from
    // the borrowed span: nothing ever lands in the staging buffer.
    StreamDecoder decoder;
    DecodeError error;
    size_t decoded = 0;
    for (int i = 0; i < 50; ++i) {
        decoder.feed(encodeSegment(KeepaliveMessage{}));
        while (decoder.next(error))
            ++decoded;
        ASSERT_FALSE(error) << error.detail;
        EXPECT_EQ(decoder.stagingBytes(), 0u);
    }
    EXPECT_EQ(decoded, 50u);
    EXPECT_EQ(decoder.bufferedBytes(), 0u);
}

TEST(StreamDecoder, MixedSegmentAndSpanFeedsKeepStreamOrder)
{
    OpenMessage open;
    open.myAs = 11;
    open.bgpIdentifier = 12;
    auto open_wire = encodeMessage(open);

    StreamDecoder decoder;
    DecodeError error;
    // First half of the OPEN as raw bytes, second half inside a
    // segment, then a whole keepalive segment.
    size_t half = open_wire.size() / 2;
    decoder.feed(std::span(open_wire.data(), half));
    EXPECT_FALSE(decoder.next(error).has_value());
    decoder.feed(net::BufferPool::global().wrap(std::vector<uint8_t>(
        open_wire.begin() + long(half), open_wire.end())));
    decoder.feed(encodeSegment(KeepaliveMessage{}));

    auto first = decoder.next(error);
    ASSERT_TRUE(first.has_value()) << error.detail;
    EXPECT_EQ(messageType(*first), MessageType::Open);
    auto second = decoder.next(error);
    ASSERT_TRUE(second.has_value()) << error.detail;
    EXPECT_EQ(messageType(*second), MessageType::Keepalive);
    EXPECT_EQ(decoder.bufferedBytes(), 0u);
}

TEST(StreamDecoder, FrameStraddlingSegmentsReassembles)
{
    // One frame split across three segments exercises the spill path
    // that copies only the straddling frame into staging.
    UpdateMessage update;
    update.attributes = sampleAttrs(7);
    update.nlri.emplace_back(net::Ipv4Address(10, 1, 2, 0), 24);
    auto wire = encodeMessage(update);

    StreamDecoder decoder;
    DecodeError error;
    auto &pool = net::BufferPool::global();
    size_t third = wire.size() / 3;
    decoder.feed(pool.wrap(std::vector<uint8_t>(
        wire.begin(), wire.begin() + long(third))));
    EXPECT_FALSE(decoder.next(error).has_value());
    decoder.feed(pool.wrap(std::vector<uint8_t>(
        wire.begin() + long(third), wire.begin() + long(2 * third))));
    EXPECT_FALSE(decoder.next(error).has_value());
    decoder.feed(pool.wrap(std::vector<uint8_t>(
        wire.begin() + long(2 * third), wire.end())));
    auto msg = decoder.next(error);
    ASSERT_TRUE(msg.has_value()) << error.detail;
    EXPECT_EQ(messageType(*msg), MessageType::Update);
    EXPECT_EQ(decoder.bufferedBytes(), 0u);
}

/** Property: random update batches survive stream reassembly. */
TEST(StreamDecoderProperty, RandomChunkingRoundTrip)
{
    workload::Rng rng(41);
    for (int trial = 0; trial < 50; ++trial) {
        std::vector<UpdateMessage> sent;
        std::vector<uint8_t> stream;
        int messages = int(rng.range(1, 12));
        for (int m = 0; m < messages; ++m) {
            UpdateMessage update;
            update.attributes =
                sampleAttrs(uint16_t(rng.range(1, 60000)));
            int prefixes = int(rng.range(1, 20));
            for (int p = 0; p < prefixes; ++p) {
                update.nlri.emplace_back(
                    net::Ipv4Address(uint32_t(rng.next())),
                    int(rng.range(8, 28)));
            }
            auto wire = encodeMessage(update);
            stream.insert(stream.end(), wire.begin(), wire.end());
            sent.push_back(std::move(update));
        }

        StreamDecoder decoder;
        DecodeError error;
        std::vector<UpdateMessage> received;
        size_t pos = 0;
        while (pos < stream.size()) {
            size_t chunk = std::min<size_t>(
                rng.range(1, 600), stream.size() - pos);
            decoder.feed(std::span(&stream[pos], chunk));
            pos += chunk;
            while (auto msg = decoder.next(error)) {
                received.push_back(
                    std::get<UpdateMessage>(std::move(*msg)));
            }
            ASSERT_FALSE(error) << error.detail;
        }

        ASSERT_EQ(received.size(), sent.size());
        for (size_t i = 0; i < sent.size(); ++i) {
            EXPECT_EQ(received[i].nlri, sent[i].nlri);
            EXPECT_EQ(*received[i].attributes, *sent[i].attributes);
        }
    }
}
