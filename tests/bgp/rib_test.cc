/**
 * @file
 * Tests for the three RIB structures.
 */

#include <gtest/gtest.h>

#include "bgp/rib.hh"

using namespace bgpbench;
using namespace bgpbench::bgp;

namespace
{

PathAttributesPtr
attrs(uint16_t origin_as, uint32_t local_pref = 100)
{
    PathAttributes a;
    a.asPath = AsPath::sequence({origin_as});
    a.nextHop = net::Ipv4Address(10, 0, 0, 1);
    a.localPref = local_pref;
    return makeAttributes(std::move(a));
}

const net::Prefix p1 = net::Prefix::fromString("10.1.0.0/16");
const net::Prefix p2 = net::Prefix::fromString("10.2.0.0/16");

} // namespace

TEST(AdjRibIn, UpdateInsertsAndReplaces)
{
    AdjRibIn rib;
    EXPECT_TRUE(rib.empty());

    auto a = attrs(100);
    EXPECT_TRUE(rib.update(p1, a, a));
    EXPECT_EQ(rib.size(), 1u);

    // Same content: no change reported.
    EXPECT_FALSE(rib.update(p1, a, a));

    // Different content: change reported.
    auto b = attrs(200);
    EXPECT_TRUE(rib.update(p1, b, b));
    EXPECT_EQ(rib.size(), 1u);
    EXPECT_EQ(*rib.find(p1)->received, *b);
}

TEST(AdjRibIn, ValueEqualAttributesAreNoChange)
{
    AdjRibIn rib;
    rib.update(p1, attrs(100), attrs(100));
    // Different pointers, same value.
    EXPECT_FALSE(rib.update(p1, attrs(100), attrs(100)));
}

TEST(AdjRibIn, PolicyRejectionStoredAsNullEffective)
{
    AdjRibIn rib;
    EXPECT_TRUE(rib.update(p1, attrs(100), nullptr));
    const auto *entry = rib.find(p1);
    ASSERT_NE(entry, nullptr);
    EXPECT_TRUE(entry->received);
    EXPECT_FALSE(entry->effective);

    // Accepting the same route later is a change.
    EXPECT_TRUE(rib.update(p1, attrs(100), attrs(100)));
}

TEST(AdjRibIn, WithdrawRemoves)
{
    AdjRibIn rib;
    rib.update(p1, attrs(100), attrs(100));
    EXPECT_TRUE(rib.withdraw(p1));
    EXPECT_FALSE(rib.withdraw(p1));
    EXPECT_EQ(rib.find(p1), nullptr);
}

TEST(AdjRibIn, ForEachVisitsAll)
{
    AdjRibIn rib;
    rib.update(p1, attrs(100), attrs(100));
    rib.update(p2, attrs(200), attrs(200));
    size_t seen = 0;
    rib.forEach([&](const net::Prefix &, const AdjRibIn::Entry &) {
        ++seen;
    });
    EXPECT_EQ(seen, 2u);
}

TEST(LocRib, SelectReportsChanges)
{
    LocRib rib;
    Candidate c1{attrs(100), 1, 10, true};
    EXPECT_TRUE(rib.select(p1, c1));
    // Same attributes, same peer: no change.
    EXPECT_FALSE(rib.select(p1, c1));
    // Same attributes from a different peer: change (provenance).
    Candidate c2{attrs(100), 2, 20, true};
    EXPECT_TRUE(rib.select(p1, c2));
    // Different attributes: change.
    Candidate c3{attrs(300), 2, 20, true};
    EXPECT_TRUE(rib.select(p1, c3));
}

TEST(LocRib, RemoveLifecycle)
{
    LocRib rib;
    EXPECT_FALSE(rib.remove(p1));
    rib.select(p1, Candidate{attrs(100), 1, 10, true});
    EXPECT_EQ(rib.size(), 1u);
    EXPECT_TRUE(rib.remove(p1));
    EXPECT_TRUE(rib.empty());
    EXPECT_EQ(rib.find(p1), nullptr);
}

TEST(AdjRibOut, AdvertiseSuppressesNoOps)
{
    AdjRibOut rib;
    auto a = attrs(100);
    EXPECT_TRUE(rib.advertise(p1, a));
    // Re-advertising the identical route must not generate traffic.
    EXPECT_FALSE(rib.advertise(p1, a));
    EXPECT_FALSE(rib.advertise(p1, attrs(100)));
    // A new path does.
    EXPECT_TRUE(rib.advertise(p1, attrs(200)));
}

TEST(AdjRibOut, WithdrawOnlyWhenAdvertised)
{
    AdjRibOut rib;
    EXPECT_FALSE(rib.withdraw(p1));
    rib.advertise(p1, attrs(100));
    EXPECT_TRUE(rib.withdraw(p1));
    EXPECT_FALSE(rib.withdraw(p1));
}

TEST(AdjRibOut, FindAndSize)
{
    AdjRibOut rib;
    rib.advertise(p1, attrs(100));
    rib.advertise(p2, attrs(200));
    EXPECT_EQ(rib.size(), 2u);
    ASSERT_NE(rib.find(p1), nullptr);
    EXPECT_EQ((*rib.find(p1))->asPath.originAs(), 100);
    EXPECT_EQ(rib.find(net::Prefix::fromString("9.9.0.0/16")),
              nullptr);
}
