/**
 * @file
 * Integration tests for BgpSpeaker: two (or three) real speakers
 * exchanging wire-format messages through an in-memory transport.
 */

#include <gtest/gtest.h>

#include <deque>
#include <map>

#include "bgp/speaker.hh"
#include "net/logging.hh"

using namespace bgpbench;
using namespace bgpbench::bgp;

namespace
{

net::Prefix
prefix(uint32_t i)
{
    return net::Prefix(
        net::Ipv4Address(10, uint8_t(i >> 8), uint8_t(i), 0), 24);
}

PathAttributesPtr
attrs(std::vector<AsNumber> path,
      net::Ipv4Address next_hop = net::Ipv4Address(10, 0, 0, 9))
{
    PathAttributes a;
    a.asPath = AsPath::sequence(std::move(path));
    a.nextHop = next_hop;
    return makeAttributes(std::move(a));
}

/**
 * In-memory mesh transport: every speaker's transmissions are queued
 * and delivered by pump(), avoiding unbounded recursion. Also records
 * FIB updates per speaker.
 */
class Mesh
{
  public:
    struct Node;

    struct Events : public SpeakerEvents
    {
        Mesh *mesh = nullptr;
        size_t self = 0;

        void
        onTransmit(PeerId to, MessageType, net::WireSegmentPtr wire,
                   size_t) override
        {
            mesh->enqueue(self, to, std::move(wire));
        }

        void
        onFibUpdate(const FibUpdate &update) override
        {
            mesh->nodes[self]->fibLog.push_back(update);
        }
    };

    struct Node
    {
        Events events;
        std::unique_ptr<BgpSpeaker> speaker;
        std::vector<FibUpdate> fibLog;
        /** peer id (local) -> {remote node, remote's peer id} */
        std::map<PeerId, std::pair<size_t, PeerId>> wiring;
    };

    size_t
    addSpeaker(AsNumber asn, RouterId id, net::Ipv4Address addr,
               PackingOptions packing = {})
    {
        auto node = std::make_unique<Node>();
        node->events.mesh = this;
        node->events.self = nodes.size();
        SpeakerConfig config;
        config.localAs = asn;
        config.routerId = id;
        config.localAddress = addr;
        config.packing = packing;
        node->speaker = std::make_unique<BgpSpeaker>(config,
                                                     &node->events);
        nodes.push_back(std::move(node));
        return nodes.size() - 1;
    }

    /** Wire node a's peer pa to node b's peer pb and establish. */
    void
    connect(size_t a, PeerId pa, size_t b, PeerId pb,
            Policy a_import = {}, Policy a_export = {})
    {
        PeerConfig ca;
        ca.id = pa;
        ca.asn = nodes[b]->speaker->config().localAs;
        ca.importPolicy = std::move(a_import);
        ca.exportPolicy = std::move(a_export);
        nodes[a]->speaker->addPeer(ca);

        PeerConfig cb;
        cb.id = pb;
        cb.asn = nodes[a]->speaker->config().localAs;
        nodes[b]->speaker->addPeer(cb);

        nodes[a]->wiring[pa] = {b, pb};
        nodes[b]->wiring[pb] = {a, pa};

        nodes[a]->speaker->startPeer(pa, now);
        nodes[b]->speaker->startPeer(pb, now);
        nodes[a]->speaker->tcpEstablished(pa, now);
        nodes[b]->speaker->tcpEstablished(pb, now);
        pump();
    }

    void
    enqueue(size_t from, PeerId via, net::WireSegmentPtr wire)
    {
        queue.push_back({from, via, std::move(wire)});
    }

    /** Deliver queued segments until the network is quiet. */
    void
    pump()
    {
        while (!queue.empty()) {
            auto item = std::move(queue.front());
            queue.pop_front();
            auto [to, to_peer] = nodes[item.from]->wiring.at(item.via);
            nodes[to]->speaker->receiveSegment(to_peer,
                                               std::move(item.wire),
                                               now);
        }
    }

    BgpSpeaker &speakerAt(size_t i) { return *nodes[i]->speaker; }

    std::vector<std::unique_ptr<Node>> nodes;
    struct Segment
    {
        size_t from;
        PeerId via;
        net::WireSegmentPtr wire;
    };
    std::deque<Segment> queue;
    uint64_t now = 0;
};

} // namespace

TEST(Speaker, HandshakeEstablishesBothSides)
{
    Mesh mesh;
    size_t a = mesh.addSpeaker(65001, 1, net::Ipv4Address(10, 0, 0, 1));
    size_t b = mesh.addSpeaker(65002, 2, net::Ipv4Address(10, 0, 0, 2));
    mesh.connect(a, 0, b, 0);

    EXPECT_EQ(mesh.speakerAt(a).sessionState(0),
              SessionState::Established);
    EXPECT_EQ(mesh.speakerAt(b).sessionState(0),
              SessionState::Established);
}

TEST(Speaker, RoutePropagatesWithPrependAndNextHopSelf)
{
    Mesh mesh;
    size_t a = mesh.addSpeaker(65001, 1, net::Ipv4Address(10, 0, 0, 1));
    size_t b = mesh.addSpeaker(65002, 2, net::Ipv4Address(10, 0, 0, 2));
    mesh.connect(a, 0, b, 0);

    mesh.speakerAt(a).originate(prefix(1), attrs({}), 0);
    mesh.pump();

    const auto *entry = mesh.speakerAt(b).locRib().find(prefix(1));
    ASSERT_NE(entry, nullptr);
    // The path b sees is [65001]; next hop is a's address.
    EXPECT_EQ(entry->best.attributes->asPath.toString(), "65001");
    EXPECT_EQ(entry->best.attributes->nextHop,
              net::Ipv4Address(10, 0, 0, 1));

    // b's FIB was told to install the route.
    ASSERT_EQ(mesh.nodes[b]->fibLog.size(), 1u);
    EXPECT_EQ(mesh.nodes[b]->fibLog[0].prefix, prefix(1));
    EXPECT_FALSE(mesh.nodes[b]->fibLog[0].isWithdraw());
}

TEST(Speaker, TransitPropagationThroughMiddleAs)
{
    Mesh mesh;
    size_t a = mesh.addSpeaker(65001, 1, net::Ipv4Address(10, 0, 0, 1));
    size_t b = mesh.addSpeaker(65002, 2, net::Ipv4Address(10, 0, 0, 2));
    size_t c = mesh.addSpeaker(65003, 3, net::Ipv4Address(10, 0, 0, 3));
    mesh.connect(a, 0, b, 0);
    mesh.connect(b, 1, c, 0);

    mesh.speakerAt(a).originate(prefix(7), attrs({}), 0);
    mesh.pump();

    const auto *entry = mesh.speakerAt(c).locRib().find(prefix(7));
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->best.attributes->asPath.toString(),
              "65002 65001");
    EXPECT_EQ(entry->best.attributes->nextHop,
              net::Ipv4Address(10, 0, 0, 2));
}

TEST(Speaker, WithdrawalPropagates)
{
    Mesh mesh;
    size_t a = mesh.addSpeaker(65001, 1, net::Ipv4Address(10, 0, 0, 1));
    size_t b = mesh.addSpeaker(65002, 2, net::Ipv4Address(10, 0, 0, 2));
    mesh.connect(a, 0, b, 0);

    mesh.speakerAt(a).originate(prefix(1), attrs({}), 0);
    mesh.pump();
    ASSERT_NE(mesh.speakerAt(b).locRib().find(prefix(1)), nullptr);

    mesh.speakerAt(a).withdrawLocal(prefix(1), 0);
    mesh.pump();
    EXPECT_EQ(mesh.speakerAt(b).locRib().find(prefix(1)), nullptr);
    ASSERT_EQ(mesh.nodes[b]->fibLog.size(), 2u);
    EXPECT_TRUE(mesh.nodes[b]->fibLog[1].isWithdraw());
}

TEST(Speaker, ShorterPathWinsAcrossPeers)
{
    // b hears prefix from a (path length 1) and from c via a longer
    // configured path; it must pick a's.
    Mesh mesh;
    size_t a = mesh.addSpeaker(65001, 1, net::Ipv4Address(10, 0, 0, 1));
    size_t b = mesh.addSpeaker(65002, 2, net::Ipv4Address(10, 0, 0, 2));
    size_t c = mesh.addSpeaker(65003, 3, net::Ipv4Address(10, 0, 0, 3));
    mesh.connect(a, 0, b, 0);
    mesh.connect(c, 0, b, 1);

    mesh.speakerAt(c).originate(prefix(5), attrs({64000, 64001}), 0);
    mesh.pump();
    {
        const auto *entry = mesh.speakerAt(b).locRib().find(prefix(5));
        ASSERT_NE(entry, nullptr);
        EXPECT_EQ(entry->best.peer, PeerId(1)); // from c
    }

    mesh.speakerAt(a).originate(prefix(5), attrs({}), 0);
    mesh.pump();
    {
        const auto *entry = mesh.speakerAt(b).locRib().find(prefix(5));
        ASSERT_NE(entry, nullptr);
        EXPECT_EQ(entry->best.peer, PeerId(0)); // a's shorter path
        EXPECT_EQ(entry->best.attributes->asPath.pathLength(), 1);
    }
}

TEST(Speaker, LongerPathDoesNotDisturbBest)
{
    // The Scenario 5/6 situation: a second peer announces the same
    // prefix with a longer path; Loc-RIB and FIB must not change.
    Mesh mesh;
    size_t a = mesh.addSpeaker(65001, 1, net::Ipv4Address(10, 0, 0, 1));
    size_t b = mesh.addSpeaker(65002, 2, net::Ipv4Address(10, 0, 0, 2));
    size_t c = mesh.addSpeaker(65003, 3, net::Ipv4Address(10, 0, 0, 3));
    mesh.connect(a, 0, b, 0);
    mesh.connect(c, 0, b, 1);

    mesh.speakerAt(a).originate(prefix(5), attrs({}), 0);
    mesh.pump();
    size_t fib_before = mesh.nodes[b]->fibLog.size();
    auto decisions_before =
        mesh.speakerAt(b).counters().decisionRuns;

    mesh.speakerAt(c).originate(prefix(5), attrs({64000, 64001}), 0);
    mesh.pump();

    // Decision ran again but produced no FIB change.
    EXPECT_GT(mesh.speakerAt(b).counters().decisionRuns,
              decisions_before);
    EXPECT_EQ(mesh.nodes[b]->fibLog.size(), fib_before);
    EXPECT_EQ(mesh.speakerAt(b).locRib().find(prefix(5))->best.peer,
              PeerId(0));
}

TEST(Speaker, LoopingPathIgnored)
{
    Mesh mesh;
    size_t a = mesh.addSpeaker(65001, 1, net::Ipv4Address(10, 0, 0, 1));
    size_t b = mesh.addSpeaker(65002, 2, net::Ipv4Address(10, 0, 0, 2));
    mesh.connect(a, 0, b, 0);

    // a originates a route whose path already contains b's AS.
    mesh.speakerAt(a).originate(prefix(3), attrs({65002, 64000}), 0);
    mesh.pump();

    EXPECT_EQ(mesh.speakerAt(b).locRib().find(prefix(3)), nullptr);
    EXPECT_TRUE(mesh.nodes[b]->fibLog.empty());
}

TEST(Speaker, ImportPolicyRejectionLeavesNoRoute)
{
    Mesh mesh;
    size_t a = mesh.addSpeaker(65001, 1, net::Ipv4Address(10, 0, 0, 1));
    size_t b = mesh.addSpeaker(65002, 2, net::Ipv4Address(10, 0, 0, 2));

    // b imports nothing under 10/8 from a.
    Policy reject = makeRejectPrefixPolicy(
        net::Prefix::fromString("10.0.0.0/8"));
    mesh.connect(b, 0, a, 0, reject);

    mesh.speakerAt(a).originate(prefix(1), attrs({}), 0);
    mesh.pump();

    EXPECT_EQ(mesh.speakerAt(b).locRib().find(prefix(1)), nullptr);
    // The rejected route is still remembered in the Adj-RIB-In.
    EXPECT_EQ(mesh.speakerAt(b).adjRibIn(0).size(), 1u);
}

TEST(Speaker, FullTableSentToLateJoiner)
{
    Mesh mesh;
    size_t a = mesh.addSpeaker(65001, 1, net::Ipv4Address(10, 0, 0, 1));
    size_t b = mesh.addSpeaker(65002, 2, net::Ipv4Address(10, 0, 0, 2));
    mesh.connect(a, 0, b, 0);

    for (uint32_t i = 0; i < 50; ++i)
        mesh.speakerAt(a).originate(prefix(i), attrs({}), 0);
    mesh.pump();

    // c joins after b already has the table (the Phase 2 situation).
    size_t c = mesh.addSpeaker(65003, 3, net::Ipv4Address(10, 0, 0, 3));
    mesh.connect(b, 1, c, 0);

    EXPECT_EQ(mesh.speakerAt(c).locRib().size(), 50u);
}

TEST(Speaker, SessionLossInvalidatesRoutes)
{
    Mesh mesh;
    size_t a = mesh.addSpeaker(65001, 1, net::Ipv4Address(10, 0, 0, 1));
    size_t b = mesh.addSpeaker(65002, 2, net::Ipv4Address(10, 0, 0, 2));
    size_t c = mesh.addSpeaker(65003, 3, net::Ipv4Address(10, 0, 0, 3));
    mesh.connect(a, 0, b, 0);
    mesh.connect(b, 1, c, 0);

    for (uint32_t i = 0; i < 10; ++i)
        mesh.speakerAt(a).originate(prefix(i), attrs({}), 0);
    mesh.pump();
    ASSERT_EQ(mesh.speakerAt(b).locRib().size(), 10u);
    ASSERT_EQ(mesh.speakerAt(c).locRib().size(), 10u);

    // a's session drops: b flushes a's routes and withdraws from c.
    mesh.speakerAt(b).tcpClosed(0, 0);
    mesh.pump();
    EXPECT_EQ(mesh.speakerAt(b).locRib().size(), 0u);
    EXPECT_EQ(mesh.speakerAt(c).locRib().size(), 0u);
}

TEST(Speaker, StopPeerSendsCease)
{
    Mesh mesh;
    size_t a = mesh.addSpeaker(65001, 1, net::Ipv4Address(10, 0, 0, 1));
    size_t b = mesh.addSpeaker(65002, 2, net::Ipv4Address(10, 0, 0, 2));
    mesh.connect(a, 0, b, 0);

    mesh.speakerAt(a).stopPeer(0, 0);
    mesh.pump();
    EXPECT_EQ(mesh.speakerAt(a).sessionState(0), SessionState::Idle);
    EXPECT_EQ(mesh.speakerAt(b).sessionState(0), SessionState::Idle);
    EXPECT_EQ(mesh.speakerAt(a).counters().notificationsSent, 1u);
}

TEST(Speaker, IbgpRoutesNotReflected)
{
    // a --eBGP-- b --iBGP-- c: b must not re-advertise the
    // iBGP-learned route from c to another iBGP peer, but DOES
    // advertise eBGP-learned routes to c.
    Mesh mesh;
    size_t a = mesh.addSpeaker(65001, 1, net::Ipv4Address(10, 0, 0, 1));
    size_t b = mesh.addSpeaker(65002, 2, net::Ipv4Address(10, 0, 0, 2));
    size_t c = mesh.addSpeaker(65002, 3, net::Ipv4Address(10, 0, 0, 3));
    size_t d = mesh.addSpeaker(65002, 4, net::Ipv4Address(10, 0, 0, 4));
    mesh.connect(a, 0, b, 0); // eBGP
    mesh.connect(b, 1, c, 0); // iBGP
    mesh.connect(c, 1, d, 0); // iBGP

    mesh.speakerAt(a).originate(prefix(9), attrs({}), 0);
    mesh.pump();

    // c hears it over iBGP from b.
    EXPECT_NE(mesh.speakerAt(c).locRib().find(prefix(9)), nullptr);
    // d must NOT hear it from c (no route reflection).
    EXPECT_EQ(mesh.speakerAt(d).locRib().find(prefix(9)), nullptr);
}

TEST(Speaker, CountersTrackTransactions)
{
    Mesh mesh;
    size_t a = mesh.addSpeaker(65001, 1, net::Ipv4Address(10, 0, 0, 1));
    size_t b = mesh.addSpeaker(65002, 2, net::Ipv4Address(10, 0, 0, 2));
    mesh.connect(a, 0, b, 0);

    for (uint32_t i = 0; i < 20; ++i)
        mesh.speakerAt(a).originate(prefix(i), attrs({}), 0);
    mesh.pump();

    const auto &counters = mesh.speakerAt(b).counters();
    EXPECT_EQ(counters.announcementsProcessed, 20u);
    EXPECT_EQ(counters.locRibChanges, 20u);
    EXPECT_EQ(counters.fibChanges, 20u);
    EXPECT_EQ(counters.transactionsProcessed(), 20u);

    mesh.speakerAt(a).withdrawLocal(prefix(0), 0);
    mesh.pump();
    EXPECT_EQ(counters.withdrawalsProcessed, 1u);
}

TEST(Speaker, SmallPackingEmitsOneUpdatePerPrefix)
{
    Mesh mesh;
    PackingOptions small;
    small.maxPrefixesPerUpdate = 1;
    size_t a = mesh.addSpeaker(65001, 1, net::Ipv4Address(10, 0, 0, 1),
                               small);
    size_t b = mesh.addSpeaker(65002, 2, net::Ipv4Address(10, 0, 0, 2));
    mesh.connect(a, 0, b, 0);

    for (uint32_t i = 0; i < 10; ++i)
        mesh.speakerAt(a).originate(prefix(i), attrs({}), 0);
    mesh.pump();

    EXPECT_EQ(mesh.speakerAt(a).counters().updatesSent, 10u);
    EXPECT_EQ(mesh.speakerAt(b).counters().updatesReceived, 10u);
}

TEST(Speaker, RejectsDuplicatePeerConfig)
{
    Mesh mesh;
    size_t a = mesh.addSpeaker(65001, 1, net::Ipv4Address(10, 0, 0, 1));
    PeerConfig c;
    c.id = 0;
    c.asn = 65002;
    mesh.speakerAt(a).addPeer(c);
    EXPECT_THROW(mesh.speakerAt(a).addPeer(c), FatalError);
}

TEST(Speaker, RejectsBadConfig)
{
    SpeakerConfig config;
    config.localAs = 0;
    config.routerId = 1;
    Mesh::Events events;
    EXPECT_THROW(BgpSpeaker(config, &events), FatalError);
    config.localAs = 1;
    config.routerId = 0;
    EXPECT_THROW(BgpSpeaker(config, &events), FatalError);
}
