/**
 * @file
 * Tests for outbound UPDATE packing.
 */

#include <gtest/gtest.h>

#include <map>

#include "bgp/update_builder.hh"
#include "workload/rng.hh"

using namespace bgpbench;
using namespace bgpbench::bgp;

namespace
{

PathAttributesPtr
attrs(uint16_t origin_as)
{
    PathAttributes a;
    a.asPath = AsPath::sequence({origin_as});
    a.nextHop = net::Ipv4Address(10, 0, 0, 1);
    return makeAttributes(std::move(a));
}

net::Prefix
prefix(uint32_t i)
{
    return net::Prefix(net::Ipv4Address(10, uint8_t(i >> 8),
                                        uint8_t(i), 0),
                       24);
}

} // namespace

TEST(UpdateBuilder, EmptyBuildsNothing)
{
    UpdateBuilder builder;
    EXPECT_TRUE(builder.empty());
    EXPECT_TRUE(builder.build().empty());
}

TEST(UpdateBuilder, GroupsByAttributeValue)
{
    UpdateBuilder builder;
    auto a = attrs(100);
    builder.announce(prefix(1), a);
    builder.announce(prefix(2), attrs(100)); // equal value, new ptr
    builder.announce(prefix(3), attrs(200));

    auto updates = builder.build();
    ASSERT_EQ(updates.size(), 2u);
    EXPECT_EQ(updates[0].nlri.size(), 2u);
    EXPECT_EQ(updates[1].nlri.size(), 1u);
    EXPECT_TRUE(builder.empty());
}

TEST(UpdateBuilder, WithdrawalsEmittedFirst)
{
    UpdateBuilder builder;
    builder.announce(prefix(1), attrs(100));
    builder.withdraw(prefix(2));

    auto updates = builder.build();
    ASSERT_EQ(updates.size(), 2u);
    EXPECT_EQ(updates[0].withdrawnRoutes.size(), 1u);
    EXPECT_TRUE(updates[0].nlri.empty());
    EXPECT_EQ(updates[1].nlri.size(), 1u);
}

TEST(UpdateBuilder, WithdrawSupersedesPendingAnnounce)
{
    UpdateBuilder builder;
    builder.announce(prefix(1), attrs(100));
    builder.withdraw(prefix(1));

    auto updates = builder.build();
    ASSERT_EQ(updates.size(), 1u);
    EXPECT_EQ(updates[0].withdrawnRoutes,
              std::vector<net::Prefix>{prefix(1)});
    EXPECT_TRUE(updates[0].nlri.empty());
}

TEST(UpdateBuilder, AnnounceSupersedesPendingWithdraw)
{
    UpdateBuilder builder;
    builder.withdraw(prefix(1));
    builder.announce(prefix(1), attrs(100));

    auto updates = builder.build();
    ASSERT_EQ(updates.size(), 1u);
    EXPECT_TRUE(updates[0].withdrawnRoutes.empty());
    EXPECT_EQ(updates[0].nlri, std::vector<net::Prefix>{prefix(1)});
}

TEST(UpdateBuilder, ReannounceReplacesAttributes)
{
    UpdateBuilder builder;
    builder.announce(prefix(1), attrs(100));
    builder.announce(prefix(1), attrs(200));

    auto updates = builder.build();
    ASSERT_EQ(updates.size(), 1u);
    EXPECT_EQ(updates[0].attributes->asPath.originAs(), 200);
}

TEST(UpdateBuilder, PendingTransactionCount)
{
    UpdateBuilder builder;
    builder.announce(prefix(1), attrs(100));
    builder.announce(prefix(2), attrs(100));
    builder.withdraw(prefix(3));
    EXPECT_EQ(builder.pendingTransactions(), 3u);
}

TEST(UpdateBuilder, MaxPrefixCapSplitsMessages)
{
    PackingOptions options;
    options.maxPrefixesPerUpdate = 10;
    UpdateBuilder builder(options);
    auto a = attrs(100);
    for (uint32_t i = 0; i < 25; ++i)
        builder.announce(prefix(i), a);

    auto updates = builder.build();
    ASSERT_EQ(updates.size(), 3u);
    EXPECT_EQ(updates[0].nlri.size(), 10u);
    EXPECT_EQ(updates[1].nlri.size(), 10u);
    EXPECT_EQ(updates[2].nlri.size(), 5u);
}

TEST(UpdateBuilder, CapOfOneMakesSmallPackets)
{
    PackingOptions options;
    options.maxPrefixesPerUpdate = 1;
    UpdateBuilder builder(options);
    auto a = attrs(100);
    for (uint32_t i = 0; i < 5; ++i)
        builder.announce(prefix(i), a);
    builder.withdraw(prefix(100));
    builder.withdraw(prefix(101));

    auto updates = builder.build();
    ASSERT_EQ(updates.size(), 7u);
    for (const auto &update : updates)
        EXPECT_EQ(update.transactionCount(), 1u);
}

TEST(UpdateBuilder, EveryMessageFitsWireLimit)
{
    UpdateBuilder builder;
    auto a = attrs(100);
    for (uint32_t i = 0; i < 3000; ++i)
        builder.announce(prefix(i), a);

    auto updates = builder.build();
    ASSERT_GT(updates.size(), 1u);
    size_t total = 0;
    for (const auto &update : updates) {
        EXPECT_LE(encodedSize(update), proto::maxMessageBytes);
        total += update.nlri.size();
    }
    EXPECT_EQ(total, 3000u);
}

TEST(UpdateBuilder, WithdrawalsRespectWireLimit)
{
    UpdateBuilder builder;
    for (uint32_t i = 0; i < 3000; ++i)
        builder.withdraw(prefix(i));

    auto updates = builder.build();
    size_t total = 0;
    for (const auto &update : updates) {
        EXPECT_LE(encodedSize(update), proto::maxMessageBytes);
        total += update.withdrawnRoutes.size();
    }
    EXPECT_EQ(total, 3000u);
}

TEST(UpdateBuilder, DuplicateWithdrawCollapses)
{
    UpdateBuilder builder;
    builder.withdraw(prefix(1));
    builder.withdraw(prefix(1));
    builder.withdraw(prefix(1));
    EXPECT_EQ(builder.pendingTransactions(), 1u);

    auto updates = builder.build();
    ASSERT_EQ(updates.size(), 1u);
    EXPECT_EQ(updates[0].withdrawnRoutes,
              std::vector<net::Prefix>{prefix(1)});
}

/**
 * Packing regression: groups are emitted in creation order and each
 * group's prefixes keep announcement order, even after supersessions
 * tombstone slots in the middle of a run.
 */
TEST(UpdateBuilder, EmissionOrderSurvivesSupersession)
{
    UpdateBuilder builder;
    auto a = attrs(100);
    auto b = attrs(200);
    builder.announce(prefix(1), a);
    builder.announce(prefix(2), b);
    builder.announce(prefix(3), a);
    builder.announce(prefix(4), a);
    builder.withdraw(prefix(3));     // tombstones a's middle slot
    builder.announce(prefix(2), b);  // re-announce: b keeps one slot

    auto updates = builder.build();
    ASSERT_EQ(updates.size(), 3u);
    // Withdrawals first, then group a (created first), then group b.
    EXPECT_EQ(updates[0].withdrawnRoutes,
              std::vector<net::Prefix>{prefix(3)});
    EXPECT_EQ(updates[1].nlri,
              (std::vector<net::Prefix>{prefix(1), prefix(4)}));
    EXPECT_EQ(updates[1].attributes->asPath.originAs(), 100);
    EXPECT_EQ(updates[2].nlri, std::vector<net::Prefix>{prefix(2)});
    EXPECT_EQ(updates[2].attributes->asPath.originAs(), 200);
}

/**
 * Packing regression: a prefix moved between attribute groups lands
 * in (only) the last group, at the position of its final announce.
 */
TEST(UpdateBuilder, RegroupedPrefixCountsOnce)
{
    UpdateBuilder builder;
    builder.announce(prefix(1), attrs(100));
    builder.announce(prefix(2), attrs(100));
    builder.announce(prefix(1), attrs(200));

    auto updates = builder.build();
    ASSERT_EQ(updates.size(), 2u);
    EXPECT_EQ(updates[0].nlri, std::vector<net::Prefix>{prefix(2)});
    EXPECT_EQ(updates[1].nlri, std::vector<net::Prefix>{prefix(1)});
    EXPECT_EQ(updates[1].attributes->asPath.originAs(), 200);
}

/** Packing regression: the cap chunks a group into exact runs. */
TEST(UpdateBuilder, CapChunksKeepOrderWithinGroup)
{
    PackingOptions options;
    options.maxPrefixesPerUpdate = 2;
    UpdateBuilder builder(options);
    auto a = attrs(100);
    for (uint32_t i = 0; i < 5; ++i)
        builder.announce(prefix(i), a);

    auto updates = builder.build();
    ASSERT_EQ(updates.size(), 3u);
    EXPECT_EQ(updates[0].nlri,
              (std::vector<net::Prefix>{prefix(0), prefix(1)}));
    EXPECT_EQ(updates[1].nlri,
              (std::vector<net::Prefix>{prefix(2), prefix(3)}));
    EXPECT_EQ(updates[2].nlri, std::vector<net::Prefix>{prefix(4)});
}

/** A large group count exercises the group index, not a linear scan. */
TEST(UpdateBuilder, ManyDistinctGroupsRoundTrip)
{
    UpdateBuilder builder;
    for (uint32_t i = 0; i < 300; ++i)
        builder.announce(prefix(i), attrs(uint16_t(1 + i)));

    auto updates = builder.build();
    ASSERT_EQ(updates.size(), 300u);
    for (uint32_t i = 0; i < 300; ++i) {
        EXPECT_EQ(updates[i].nlri, std::vector<net::Prefix>{prefix(i)});
        EXPECT_EQ(updates[i].attributes->asPath.originAs(),
                  uint16_t(1 + i));
    }
}

/** Property: build() conserves the exact set of pending changes. */
TEST(UpdateBuilderProperty, BuildConservesChanges)
{
    workload::Rng rng(37);
    for (int trial = 0; trial < 60; ++trial) {
        PackingOptions options;
        options.maxPrefixesPerUpdate = rng.range(0, 20);
        UpdateBuilder builder(options);

        std::map<net::Prefix, int> expected; // 1 announce, -1 withdraw
        int n = int(rng.range(1, 200));
        for (int i = 0; i < n; ++i) {
            auto p = prefix(uint32_t(rng.range(0, 60)));
            if (rng.below(3) == 0) {
                builder.withdraw(p);
                expected[p] = -1;
            } else {
                builder.announce(p, attrs(uint16_t(rng.range(1, 4))));
                expected[p] = 1;
            }
        }

        std::map<net::Prefix, int> got;
        for (const auto &update : builder.build()) {
            for (const auto &p : update.withdrawnRoutes) {
                EXPECT_EQ(got.count(p), 0u);
                got[p] = -1;
            }
            for (const auto &p : update.nlri) {
                EXPECT_EQ(got.count(p), 0u);
                got[p] = 1;
            }
        }
        EXPECT_EQ(got, expected) << "trial " << trial;
    }
}
