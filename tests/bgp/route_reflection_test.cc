/**
 * @file
 * Tests for iBGP route reflection (RFC 4456): attribute codec,
 * reflection rules, loop prevention, and decision tie-breakers.
 */

#include <gtest/gtest.h>

#include <deque>
#include <map>

#include "bgp/decision.hh"
#include "bgp/speaker.hh"
#include "net/logging.hh"

using namespace bgpbench;
using namespace bgpbench::bgp;

namespace
{

net::Prefix
prefix(uint32_t i)
{
    return net::Prefix(
        net::Ipv4Address(10, uint8_t(i >> 8), uint8_t(i), 0), 24);
}

PathAttributesPtr
attrs(std::vector<AsNumber> path = {})
{
    PathAttributes a;
    a.asPath = AsPath::sequence(std::move(path));
    a.nextHop = net::Ipv4Address(10, 0, 0, 9);
    return makeAttributes(std::move(a));
}

/**
 * iBGP cluster harness: speakers of one AS wired through a queued
 * transport, with per-link client flags.
 */
class Cluster
{
  public:
    struct Node;

    struct Events : public SpeakerEvents
    {
        Cluster *cluster = nullptr;
        size_t self = 0;

        void
        onTransmit(PeerId to, MessageType, net::WireSegmentPtr wire,
                   size_t) override
        {
            cluster->queue_.push_back({self, to, std::move(wire)});
        }
    };

    struct Node
    {
        Events events;
        std::unique_ptr<BgpSpeaker> speaker;
        std::map<PeerId, std::pair<size_t, PeerId>> wiring;
    };

    size_t
    addSpeaker(AsNumber asn, RouterId id, uint32_t cluster_id = 0)
    {
        auto node = std::make_unique<Node>();
        node->events.cluster = this;
        node->events.self = nodes_.size();
        SpeakerConfig config;
        config.localAs = asn;
        config.routerId = id;
        config.localAddress = net::Ipv4Address(
            10, 255, 0, uint8_t(nodes_.size() + 1));
        config.clusterId = cluster_id;
        node->speaker =
            std::make_unique<BgpSpeaker>(config, &node->events);
        nodes_.push_back(std::move(node));
        return nodes_.size() - 1;
    }

    /** Wire a<->b; @p b_is_client marks b as a's reflection client. */
    void
    connect(size_t a, PeerId pa, size_t b, PeerId pb,
            bool b_is_client_of_a = false)
    {
        PeerConfig ca;
        ca.id = pa;
        ca.asn = nodes_[b]->speaker->config().localAs;
        ca.routeReflectorClient = b_is_client_of_a;
        nodes_[a]->speaker->addPeer(ca);

        PeerConfig cb;
        cb.id = pb;
        cb.asn = nodes_[a]->speaker->config().localAs;
        nodes_[b]->speaker->addPeer(cb);

        nodes_[a]->wiring[pa] = {b, pb};
        nodes_[b]->wiring[pb] = {a, pa};

        nodes_[a]->speaker->startPeer(pa, 0);
        nodes_[b]->speaker->startPeer(pb, 0);
        nodes_[a]->speaker->tcpEstablished(pa, 0);
        nodes_[b]->speaker->tcpEstablished(pb, 0);
        pump();
    }

    void
    pump()
    {
        while (!queue_.empty()) {
            auto seg = std::move(queue_.front());
            queue_.pop_front();
            auto [to, to_peer] =
                nodes_[seg.from]->wiring.at(seg.via);
            nodes_[to]->speaker->receiveSegment(to_peer,
                                                std::move(seg.wire), 0);
        }
    }

    BgpSpeaker &at(size_t i) { return *nodes_[i]->speaker; }

  private:
    struct Segment
    {
        size_t from;
        PeerId via;
        net::WireSegmentPtr wire;
    };
    std::vector<std::unique_ptr<Node>> nodes_;
    std::deque<Segment> queue_;
};

} // namespace

TEST(RouteReflection, AttributesRoundTripOnWire)
{
    PathAttributes a;
    a.asPath = AsPath::sequence({100});
    a.nextHop = net::Ipv4Address(1, 2, 3, 4);
    a.originatorId = 0x0a0b0c0d;
    a.clusterList = {1, 2, 3};

    net::ByteWriter w;
    a.encode(w);
    EXPECT_EQ(w.size(), a.encodedSize());
    auto bytes = w.take();
    net::ByteReader r(bytes);
    DecodeError error;
    auto decoded = PathAttributes::decode(r, error);
    ASSERT_TRUE(decoded.has_value()) << error.detail;
    EXPECT_EQ(decoded->originatorId, a.originatorId);
    EXPECT_EQ(decoded->clusterList, a.clusterList);
}

TEST(RouteReflection, ClientRouteReflectedToAll)
{
    // rr has clients c1, c2 and a plain iBGP peer p.
    Cluster cluster;
    size_t rr = cluster.addSpeaker(65000, 1);
    size_t c1 = cluster.addSpeaker(65000, 2);
    size_t c2 = cluster.addSpeaker(65000, 3);
    size_t p = cluster.addSpeaker(65000, 4);
    cluster.connect(rr, 0, c1, 0, true);
    cluster.connect(rr, 1, c2, 0, true);
    cluster.connect(rr, 2, p, 0, false);

    cluster.at(c1).originate(prefix(1), attrs(), 0);
    cluster.pump();

    // A client's route reaches the other client AND the non-client.
    EXPECT_NE(cluster.at(rr).locRib().find(prefix(1)), nullptr);
    EXPECT_NE(cluster.at(c2).locRib().find(prefix(1)), nullptr);
    EXPECT_NE(cluster.at(p).locRib().find(prefix(1)), nullptr);

    // The reflected route carries ORIGINATOR_ID = c1's router id and
    // one cluster hop.
    const auto *entry = cluster.at(c2).locRib().find(prefix(1));
    ASSERT_NE(entry, nullptr);
    ASSERT_TRUE(entry->best.attributes->originatorId.has_value());
    EXPECT_EQ(*entry->best.attributes->originatorId, 2u);
    EXPECT_EQ(entry->best.attributes->clusterList,
              std::vector<uint32_t>{1});
    // Next hop is NOT rewritten on reflection.
    EXPECT_EQ(entry->best.attributes->nextHop,
              net::Ipv4Address(10, 0, 0, 9));
}

TEST(RouteReflection, NonClientRouteReflectedOnlyToClients)
{
    Cluster cluster;
    size_t rr = cluster.addSpeaker(65000, 1);
    size_t c1 = cluster.addSpeaker(65000, 2);
    size_t p1 = cluster.addSpeaker(65000, 3);
    size_t p2 = cluster.addSpeaker(65000, 4);
    cluster.connect(rr, 0, c1, 0, true);
    cluster.connect(rr, 1, p1, 0, false);
    cluster.connect(rr, 2, p2, 0, false);

    cluster.at(p1).originate(prefix(2), attrs(), 0);
    cluster.pump();

    // Reflected to the client, but not to the other non-client
    // (classic iBGP full-mesh rule still applies there).
    EXPECT_NE(cluster.at(c1).locRib().find(prefix(2)), nullptr);
    EXPECT_EQ(cluster.at(p2).locRib().find(prefix(2)), nullptr);
}

TEST(RouteReflection, WithoutClientsNoIbgpReflection)
{
    Cluster cluster;
    size_t rr = cluster.addSpeaker(65000, 1);
    size_t p1 = cluster.addSpeaker(65000, 2);
    size_t p2 = cluster.addSpeaker(65000, 3);
    cluster.connect(rr, 0, p1, 0, false);
    cluster.connect(rr, 1, p2, 0, false);

    cluster.at(p1).originate(prefix(3), attrs(), 0);
    cluster.pump();
    EXPECT_NE(cluster.at(rr).locRib().find(prefix(3)), nullptr);
    EXPECT_EQ(cluster.at(p2).locRib().find(prefix(3)), nullptr);
}

TEST(RouteReflection, ChainedReflectorsAccumulateClusterList)
{
    // c -> rr1 -> rr2 (rr1 is rr2's client; c is rr1's client).
    Cluster cluster;
    size_t rr2 = cluster.addSpeaker(65000, 1, 100);
    size_t rr1 = cluster.addSpeaker(65000, 2, 200);
    size_t c = cluster.addSpeaker(65000, 3);
    size_t leaf = cluster.addSpeaker(65000, 4);
    cluster.connect(rr1, 0, c, 0, true);
    cluster.connect(rr2, 0, rr1, 1, true);
    cluster.connect(rr2, 1, leaf, 0, true);

    cluster.at(c).originate(prefix(4), attrs(), 0);
    cluster.pump();

    const auto *entry = cluster.at(leaf).locRib().find(prefix(4));
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->best.attributes->clusterList,
              (std::vector<uint32_t>{100, 200}));
    EXPECT_EQ(entry->best.attributes->originatorId, RouterId(3));
}

TEST(RouteReflection, ClusterLoopDropped)
{
    // Two reflectors in the SAME cluster id, clients of each other:
    // a reflected route must not ping-pong.
    Cluster cluster;
    size_t a = cluster.addSpeaker(65000, 1, 777);
    size_t b = cluster.addSpeaker(65000, 2, 777);
    size_t c = cluster.addSpeaker(65000, 3);
    cluster.connect(a, 0, b, 0, true);
    cluster.connect(a, 1, c, 0, true);

    cluster.at(c).originate(prefix(5), attrs(), 0);
    cluster.pump(); // must terminate: loop prevention stops ping-pong

    // a reflects c's route toward b with CLUSTER_LIST [777], but b
    // shares cluster id 777 and must drop it (RFC 4456 section 8:
    // redundant reflectors of one cluster rely on clients peering
    // with both, never on reflecting to each other).
    EXPECT_EQ(cluster.at(b).locRib().find(prefix(5)), nullptr);
    // a's own best stays the direct (unreflected) route from c.
    const auto *entry = cluster.at(a).locRib().find(prefix(5));
    ASSERT_NE(entry, nullptr);
    EXPECT_TRUE(entry->best.attributes->clusterList.empty());
}

TEST(RouteReflection, OriginatorLoopDropped)
{
    // The originator must ignore its own route coming back.
    Cluster cluster;
    size_t rr = cluster.addSpeaker(65000, 1);
    size_t c1 = cluster.addSpeaker(65000, 2);
    size_t c2 = cluster.addSpeaker(65000, 3);
    cluster.connect(rr, 0, c1, 0, true);
    cluster.connect(rr, 1, c2, 0, true);
    // c2 is also c1's client (redundant triangle).
    cluster.connect(c1, 1, c2, 1, true);

    cluster.at(c1).originate(prefix(6), attrs(), 0);
    cluster.pump();

    // c1's Loc-RIB still holds its own (local) route, not a
    // reflected copy of itself.
    const auto *entry = cluster.at(c1).locRib().find(prefix(6));
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->best.peer, BgpSpeaker::localPeerId);
}

TEST(RouteReflection, EbgpExportStripsReflectionAttributes)
{
    Cluster cluster;
    size_t rr = cluster.addSpeaker(65000, 1);
    size_t c1 = cluster.addSpeaker(65000, 2);
    size_t ext = cluster.addSpeaker(65099, 3); // eBGP neighbour of rr
    cluster.connect(rr, 0, c1, 0, true);
    cluster.connect(rr, 1, ext, 0);

    cluster.at(c1).originate(prefix(7), attrs(), 0);
    cluster.pump();

    const auto *entry = cluster.at(ext).locRib().find(prefix(7));
    ASSERT_NE(entry, nullptr);
    // Non-transitive reflection attributes never cross an AS border.
    EXPECT_FALSE(entry->best.attributes->originatorId.has_value());
    EXPECT_TRUE(entry->best.attributes->clusterList.empty());
    EXPECT_EQ(entry->best.attributes->asPath.toString(), "65000");
}

TEST(RouteReflectionDecision, ShorterClusterListWins)
{
    auto make = [](size_t hops, PeerId peer, RouterId id) {
        PathAttributes a;
        a.asPath = AsPath::sequence({100});
        a.nextHop = net::Ipv4Address(10, 0, 0, 9);
        for (size_t i = 0; i < hops; ++i)
            a.clusterList.push_back(uint32_t(50 + i));
        return Candidate{makeAttributes(std::move(a)), peer, id,
                         false};
    };
    auto one_hop = make(1, 1, 99);
    auto two_hops = make(2, 2, 5); // better router id, longer list
    EXPECT_LT(compareCandidates(one_hop, two_hops), 0);
}

TEST(RouteReflectionDecision, OriginatorIdReplacesRouterId)
{
    auto make = [](std::optional<RouterId> orig, RouterId peer_id,
                   PeerId peer) {
        PathAttributes a;
        a.asPath = AsPath::sequence({100});
        a.nextHop = net::Ipv4Address(10, 0, 0, 9);
        a.originatorId = orig;
        return Candidate{makeAttributes(std::move(a)), peer, peer_id,
                         false};
    };
    // a comes via a peer with high id but low ORIGINATOR_ID.
    auto a = make(RouterId(3), 90, 1);
    auto b = make(std::nullopt, 10, 2);
    EXPECT_LT(compareCandidates(a, b), 0);
}
