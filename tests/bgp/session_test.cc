/**
 * @file
 * Tests for the per-peer session FSM (RFC 4271 section 8).
 */

#include <gtest/gtest.h>

#include "bgp/session.hh"

using namespace bgpbench;
using namespace bgpbench::bgp;

namespace
{

constexpr uint64_t sec = 1'000'000'000ull;

SessionConfig
config(uint16_t hold = 180)
{
    SessionConfig c;
    c.localAs = 65000;
    c.localId = 1;
    c.holdTimeSec = hold;
    c.expectedPeerAs = 65001;
    return c;
}

OpenMessage
peerOpen(uint16_t hold = 180, AsNumber asn = 65001)
{
    OpenMessage open;
    open.myAs = asn;
    open.holdTimeSec = hold;
    open.bgpIdentifier = 99;
    return open;
}

/** Drive a session to Established; returns messages we sent. */
std::vector<Message>
establish(SessionFsm &fsm, uint64_t now = 0)
{
    std::vector<Message> tx;
    fsm.start(now);
    fsm.tcpEstablished(now, tx);
    fsm.handleMessage(peerOpen(), now, tx);
    fsm.handleMessage(KeepaliveMessage{}, now, tx);
    return tx;
}

} // namespace

TEST(SessionFsm, HappyPathReachesEstablished)
{
    SessionFsm fsm(config());
    EXPECT_EQ(fsm.state(), SessionState::Idle);

    std::vector<Message> tx;
    fsm.start(0);
    EXPECT_EQ(fsm.state(), SessionState::Connect);

    fsm.tcpEstablished(0, tx);
    EXPECT_EQ(fsm.state(), SessionState::OpenSent);
    ASSERT_EQ(tx.size(), 1u);
    EXPECT_EQ(messageType(tx[0]), MessageType::Open);

    tx.clear();
    EXPECT_TRUE(fsm.handleMessage(peerOpen(), 0, tx));
    EXPECT_EQ(fsm.state(), SessionState::OpenConfirm);
    ASSERT_EQ(tx.size(), 1u);
    EXPECT_EQ(messageType(tx[0]), MessageType::Keepalive);

    tx.clear();
    EXPECT_TRUE(fsm.handleMessage(KeepaliveMessage{}, 0, tx));
    EXPECT_TRUE(fsm.established());
    EXPECT_EQ(fsm.peerAs(), 65001);
    EXPECT_EQ(fsm.peerRouterId(), 99u);
}

TEST(SessionFsm, NegotiatesMinimumHoldTime)
{
    SessionFsm fsm(config(180));
    std::vector<Message> tx;
    fsm.start(0);
    fsm.tcpEstablished(0, tx);
    fsm.handleMessage(peerOpen(30), 0, tx);
    EXPECT_EQ(fsm.negotiatedHoldTimeSec(), 30);
}

TEST(SessionFsm, RejectsWrongPeerAs)
{
    SessionFsm fsm(config());
    std::vector<Message> tx;
    fsm.start(0);
    fsm.tcpEstablished(0, tx);
    tx.clear();

    EXPECT_FALSE(fsm.handleMessage(peerOpen(180, 64999), 0, tx));
    EXPECT_EQ(fsm.state(), SessionState::Idle);
    ASSERT_EQ(tx.size(), 1u);
    const auto &notif = std::get<NotificationMessage>(tx[0]);
    EXPECT_EQ(notif.errorCode, ErrorCode::OpenMessageError);
    EXPECT_EQ(notif.errorSubcode, uint8_t(OpenSubcode::BadPeerAs));
}

TEST(SessionFsm, UpdateBeforeEstablishedIsFsmError)
{
    SessionFsm fsm(config());
    std::vector<Message> tx;
    fsm.start(0);
    fsm.tcpEstablished(0, tx);
    tx.clear();

    EXPECT_FALSE(fsm.handleMessage(UpdateMessage{}, 0, tx));
    EXPECT_EQ(fsm.state(), SessionState::Idle);
    ASSERT_EQ(tx.size(), 1u);
    EXPECT_EQ(std::get<NotificationMessage>(tx[0]).errorCode,
              ErrorCode::FsmError);
}

TEST(SessionFsm, KeepaliveRefreshesHoldTimer)
{
    SessionFsm fsm(config(30));
    establish(fsm, 0);

    std::vector<Message> tx;
    // At t=29s the hold timer (30s) has not expired.
    EXPECT_TRUE(fsm.poll(29 * sec, tx));
    EXPECT_TRUE(fsm.established());

    // A keepalive at 29s pushes the deadline to 59s.
    fsm.handleMessage(KeepaliveMessage{}, 29 * sec, tx);
    tx.clear();
    EXPECT_TRUE(fsm.poll(58 * sec, tx));
    EXPECT_TRUE(fsm.established());
}

TEST(SessionFsm, HoldTimerExpiryTearsDown)
{
    SessionFsm fsm(config(30));
    establish(fsm, 0);

    std::vector<Message> tx;
    EXPECT_FALSE(fsm.poll(31 * sec, tx));
    EXPECT_EQ(fsm.state(), SessionState::Idle);
    ASSERT_FALSE(tx.empty());
    EXPECT_EQ(std::get<NotificationMessage>(tx.back()).errorCode,
              ErrorCode::HoldTimerExpired);
}

TEST(SessionFsm, EmitsKeepalivesAtOneThirdHold)
{
    SessionFsm fsm(config(30));
    establish(fsm, 0);

    std::vector<Message> tx;
    EXPECT_TRUE(fsm.poll(9 * sec, tx));
    EXPECT_TRUE(tx.empty()); // 10s not reached

    EXPECT_TRUE(fsm.poll(10 * sec, tx));
    ASSERT_EQ(tx.size(), 1u);
    EXPECT_EQ(messageType(tx[0]), MessageType::Keepalive);

    tx.clear();
    EXPECT_TRUE(fsm.poll(20 * sec, tx));
    ASSERT_EQ(tx.size(), 1u); // next at 10+10
}

TEST(SessionFsm, ZeroHoldTimeDisablesTimers)
{
    SessionFsm fsm(config(0));
    std::vector<Message> tx;
    fsm.start(0);
    fsm.tcpEstablished(0, tx);
    fsm.handleMessage(peerOpen(0), 0, tx);
    fsm.handleMessage(KeepaliveMessage{}, 0, tx);
    ASSERT_TRUE(fsm.established());
    EXPECT_EQ(fsm.negotiatedHoldTimeSec(), 0);

    tx.clear();
    EXPECT_TRUE(fsm.poll(100000 * sec, tx));
    EXPECT_TRUE(tx.empty());
    EXPECT_TRUE(fsm.established());
    EXPECT_EQ(fsm.nextTimerDeadline(), ~uint64_t(0));
}

TEST(SessionFsm, NotificationClosesSilently)
{
    SessionFsm fsm(config());
    establish(fsm, 0);

    std::vector<Message> tx;
    EXPECT_FALSE(fsm.handleMessage(
        NotificationMessage{ErrorCode::Cease, 0, {}}, 0, tx));
    EXPECT_EQ(fsm.state(), SessionState::Idle);
    // We must not answer a NOTIFICATION with a NOTIFICATION.
    EXPECT_TRUE(tx.empty());
}

TEST(SessionFsm, StopSendsCeaseWhenUp)
{
    SessionFsm fsm(config());
    establish(fsm, 0);

    std::vector<Message> tx;
    fsm.stop(0, tx);
    EXPECT_EQ(fsm.state(), SessionState::Idle);
    ASSERT_EQ(tx.size(), 1u);
    EXPECT_EQ(std::get<NotificationMessage>(tx[0]).errorCode,
              ErrorCode::Cease);
}

TEST(SessionFsm, StopFromIdleSendsNothing)
{
    SessionFsm fsm(config());
    std::vector<Message> tx;
    fsm.stop(0, tx);
    EXPECT_TRUE(tx.empty());
}

TEST(SessionFsm, TcpClosedFromOpenSentGoesActive)
{
    SessionFsm fsm(config());
    std::vector<Message> tx;
    fsm.start(0);
    fsm.tcpEstablished(0, tx);
    fsm.tcpClosed(0);
    EXPECT_EQ(fsm.state(), SessionState::Active);

    // A reconnect from Active works.
    tx.clear();
    fsm.tcpEstablished(0, tx);
    EXPECT_EQ(fsm.state(), SessionState::OpenSent);
    EXPECT_EQ(tx.size(), 1u);
}

TEST(SessionFsm, TcpClosedFromEstablishedGoesIdle)
{
    SessionFsm fsm(config());
    establish(fsm, 0);
    fsm.tcpClosed(0);
    EXPECT_EQ(fsm.state(), SessionState::Idle);
}

TEST(SessionFsm, SecondOpenIsFsmError)
{
    SessionFsm fsm(config());
    establish(fsm, 0);
    std::vector<Message> tx;
    EXPECT_FALSE(fsm.handleMessage(peerOpen(), 0, tx));
    EXPECT_EQ(fsm.state(), SessionState::Idle);
}

TEST(SessionFsm, TransitionCountTracksChanges)
{
    SessionFsm fsm(config());
    EXPECT_EQ(fsm.transitionCount(), 0u);
    establish(fsm, 0);
    // Idle->Connect->OpenSent->OpenConfirm->Established = 4.
    EXPECT_EQ(fsm.transitionCount(), 4u);
}

TEST(SessionFsm, StateNames)
{
    EXPECT_EQ(toString(SessionState::Idle), "Idle");
    EXPECT_EQ(toString(SessionState::Established), "Established");
    EXPECT_EQ(toString(SessionState::OpenConfirm), "OpenConfirm");
}
