/**
 * @file
 * Tests for the table-dump snapshot format.
 */

#include <gtest/gtest.h>

#include "bgp/table_io.hh"
#include "workload/route_set.hh"

using namespace bgpbench;
using namespace bgpbench::bgp;

namespace
{

TableDumpEntry
entry(const char *prefix, uint16_t origin_as, PeerId peer = 1,
      bool external = true, bool local = false)
{
    TableDumpEntry e;
    e.prefix = net::Prefix::fromString(prefix);
    PathAttributes attrs;
    attrs.asPath = AsPath::sequence({origin_as});
    attrs.nextHop = net::Ipv4Address(10, 0, 0, uint8_t(peer));
    e.best = Candidate{makeAttributes(std::move(attrs)), peer,
                       peer * 10, external, local};
    return e;
}

} // namespace

TEST(TableIo, EmptyTableRoundTrip)
{
    LocRib rib;
    auto blob = dumpTable(rib);
    DecodeError error;
    auto parsed = parseTableDump(blob, error);
    ASSERT_TRUE(parsed.has_value()) << error.detail;
    EXPECT_TRUE(parsed->empty());
}

TEST(TableIo, EntriesRoundTripExactly)
{
    std::vector<TableDumpEntry> entries = {
        entry("10.0.0.0/8", 100, 1, true, false),
        entry("10.1.0.0/16", 200, 2, false, false),
        entry("192.168.1.0/24", 300, 3, true, true),
    };
    auto blob = dumpTable(entries);

    DecodeError error;
    auto parsed = parseTableDump(blob, error);
    ASSERT_TRUE(parsed.has_value()) << error.detail;
    ASSERT_EQ(parsed->size(), entries.size());
    for (size_t i = 0; i < entries.size(); ++i) {
        EXPECT_EQ((*parsed)[i].prefix, entries[i].prefix);
        EXPECT_EQ((*parsed)[i].best.peer, entries[i].best.peer);
        EXPECT_EQ((*parsed)[i].best.peerRouterId,
                  entries[i].best.peerRouterId);
        EXPECT_EQ((*parsed)[i].best.externalSession,
                  entries[i].best.externalSession);
        EXPECT_EQ((*parsed)[i].best.locallyOriginated,
                  entries[i].best.locallyOriginated);
        EXPECT_EQ(*(*parsed)[i].best.attributes,
                  *entries[i].best.attributes);
    }
}

TEST(TableIo, LocRibDumpIsCanonicallyOrdered)
{
    LocRib rib;
    auto a = entry("10.2.0.0/16", 100);
    auto b = entry("10.1.0.0/16", 200);
    auto c = entry("10.1.0.0/24", 300);
    rib.select(a.prefix, a.best);
    rib.select(b.prefix, b.best);
    rib.select(c.prefix, c.best);

    auto blob1 = dumpTable(rib);

    // Same content inserted in a different order: identical bytes.
    LocRib rib2;
    rib2.select(c.prefix, c.best);
    rib2.select(a.prefix, a.best);
    rib2.select(b.prefix, b.best);
    EXPECT_EQ(blob1, dumpTable(rib2));

    DecodeError error;
    auto parsed = parseTableDump(blob1, error);
    ASSERT_TRUE(parsed.has_value());
    ASSERT_EQ(parsed->size(), 3u);
    EXPECT_LT((*parsed)[0].prefix, (*parsed)[1].prefix);
    EXPECT_LT((*parsed)[1].prefix, (*parsed)[2].prefix);
}

TEST(TableIo, LargeGeneratedTableRoundTrip)
{
    workload::RouteSetConfig config;
    config.count = 2000;
    auto routes = workload::generateRouteSet(config);

    LocRib rib;
    for (const auto &route : routes) {
        PathAttributes attrs;
        std::vector<AsNumber> path = {65001};
        path.insert(path.end(), route.basePath.begin(),
                    route.basePath.end());
        attrs.asPath = AsPath::sequence(std::move(path));
        attrs.nextHop = net::Ipv4Address(10, 0, 1, 2);
        rib.select(route.prefix,
                   Candidate{makeAttributes(std::move(attrs)), 0, 10,
                             true, false});
    }

    auto blob = dumpTable(rib);
    DecodeError error;
    auto parsed = parseTableDump(blob, error);
    ASSERT_TRUE(parsed.has_value()) << error.detail;
    EXPECT_EQ(parsed->size(), 2000u);
}

TEST(TableIo, RejectsBadMagic)
{
    auto blob = dumpTable(std::vector<TableDumpEntry>{});
    blob[0] ^= 0xff;
    DecodeError error;
    EXPECT_FALSE(parseTableDump(blob, error).has_value());
    EXPECT_TRUE(bool(error));
}

TEST(TableIo, RejectsWrongVersion)
{
    auto blob = dumpTable(std::vector<TableDumpEntry>{});
    blob[5] = 99;
    DecodeError error;
    EXPECT_FALSE(parseTableDump(blob, error).has_value());
    EXPECT_NE(error.detail.find("version"), std::string::npos);
}

TEST(TableIo, RejectsTruncation)
{
    auto blob =
        dumpTable(std::vector<TableDumpEntry>{entry("10.0.0.0/8",
                                                    100)});
    for (size_t len = 0; len < blob.size(); ++len) {
        DecodeError error;
        std::span<const uint8_t> cut(blob.data(), len);
        EXPECT_FALSE(parseTableDump(cut, error).has_value())
            << "accepted truncation at " << len;
    }
}

TEST(TableIo, RejectsTrailingBytes)
{
    auto blob = dumpTable(std::vector<TableDumpEntry>{});
    blob.push_back(0);
    DecodeError error;
    EXPECT_FALSE(parseTableDump(blob, error).has_value());
    EXPECT_NE(error.detail.find("trailing"), std::string::npos);
}

TEST(TableIo, RejectsBadPrefixLength)
{
    auto blob =
        dumpTable(std::vector<TableDumpEntry>{entry("10.0.0.0/8",
                                                    100)});
    // Prefix length byte sits after magic(4)+version(2)+count(4)+
    // address(4).
    blob[14] = 60;
    DecodeError error;
    EXPECT_FALSE(parseTableDump(blob, error).has_value());
}
