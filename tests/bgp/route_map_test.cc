/**
 * @file
 * Tests for the native route-map surface of the policy engine: named
 * prefix-lists with ge/le bounds (compiled vs linear oracle), as-path
 * sets, community lists, route-map first-match / continue semantics,
 * and the copy-on-write contract of set-action application.
 */

#include <random>

#include <gtest/gtest.h>

#include "bgp/policy.hh"

using namespace bgpbench;
using namespace bgpbench::bgp;

namespace
{

PathAttributesPtr
attrs(std::vector<AsNumber> path, std::vector<uint32_t> communities = {})
{
    PathAttributes a;
    a.asPath = AsPath::sequence(std::move(path));
    a.nextHop = net::Ipv4Address(10, 0, 0, 1);
    std::sort(communities.begin(), communities.end());
    a.communities = std::move(communities);
    return makeAttributes(std::move(a));
}

net::Prefix
pfx(const char *s)
{
    return net::Prefix::fromString(s);
}

Policy
mapPolicy(RouteMap map)
{
    return Policy(std::make_shared<const RouteMap>(std::move(map)));
}

} // namespace

// ---------------------------------------------------------------------------
// PrefixList: ge/le bound resolution and seq ordering.

TEST(PrefixList, ExactLengthWithoutBounds)
{
    PrefixList pl("exact");
    pl.add(5, true, pfx("10.0.0.0/16"));
    // Only routes of exactly the entry's length match.
    EXPECT_EQ(pl.evaluate(pfx("10.0.0.0/16")), ListMatch::Permit);
    EXPECT_EQ(pl.evaluate(pfx("10.0.0.0/24")), ListMatch::NoMatch);
    EXPECT_EQ(pl.evaluate(pfx("10.0.0.0/8")), ListMatch::NoMatch);
    // A /16 elsewhere is not covered at all.
    EXPECT_EQ(pl.evaluate(pfx("11.0.0.0/16")), ListMatch::NoMatch);
}

TEST(PrefixList, GeAloneExtendsToHostRoutes)
{
    PrefixList pl;
    pl.add(5, true, pfx("10.0.0.0/8"), 24);
    EXPECT_EQ(pl.evaluate(pfx("10.1.2.0/24")), ListMatch::Permit);
    EXPECT_EQ(pl.evaluate(pfx("10.1.2.3/32")), ListMatch::Permit);
    // Below the ge bound — including the entry's own length.
    EXPECT_EQ(pl.evaluate(pfx("10.1.0.0/23")), ListMatch::NoMatch);
    EXPECT_EQ(pl.evaluate(pfx("10.0.0.0/8")), ListMatch::NoMatch);
}

TEST(PrefixList, LeAloneStartsAtEntryLength)
{
    PrefixList pl;
    pl.add(5, true, pfx("10.0.0.0/8"), std::nullopt, 24);
    EXPECT_EQ(pl.evaluate(pfx("10.0.0.0/8")), ListMatch::Permit);
    EXPECT_EQ(pl.evaluate(pfx("10.1.2.0/24")), ListMatch::Permit);
    EXPECT_EQ(pl.evaluate(pfx("10.1.2.0/25")), ListMatch::NoMatch);
}

TEST(PrefixList, GeAndLeBracketTheRange)
{
    PrefixList pl;
    pl.add(5, true, pfx("10.0.0.0/8"), 16, 24);
    EXPECT_EQ(pl.evaluate(pfx("10.0.0.0/8")), ListMatch::NoMatch);
    EXPECT_EQ(pl.evaluate(pfx("10.1.0.0/16")), ListMatch::Permit);
    EXPECT_EQ(pl.evaluate(pfx("10.1.2.0/24")), ListMatch::Permit);
    EXPECT_EQ(pl.evaluate(pfx("10.1.2.128/25")), ListMatch::NoMatch);
}

TEST(PrefixList, LowestSeqWinsRegardlessOfInsertionOrder)
{
    PrefixList pl;
    // Inserted out of seq order: the seq-5 deny must still win even
    // though the permit entry was added first.
    pl.add(10, true, pfx("10.0.0.0/8"), std::nullopt, 32);
    pl.add(5, false, pfx("10.1.0.0/16"), std::nullopt, 32);
    EXPECT_EQ(pl.evaluate(pfx("10.1.2.0/24")), ListMatch::Deny);
    EXPECT_EQ(pl.evaluate(pfx("10.2.0.0/24")), ListMatch::Permit);
}

TEST(PrefixList, MoreSpecificEntryDoesNotShadowLowerSeq)
{
    PrefixList pl;
    // The covering /8 permit has the lower seq; the more specific
    // /16 deny must not shadow it (seq order, not specificity).
    pl.add(5, true, pfx("10.0.0.0/8"), std::nullopt, 32);
    pl.add(10, false, pfx("10.1.0.0/16"), std::nullopt, 32);
    EXPECT_EQ(pl.evaluate(pfx("10.1.2.0/24")), ListMatch::Permit);
}

TEST(PrefixList, CompiledLookupMatchesLinearOracle)
{
    // Property test: the trie-compiled evaluate() must agree with the
    // reference linear scan on every probe, for a deterministic
    // pseudo-random list with overlapping entries and varied bounds.
    std::mt19937 rng(20260807);
    PrefixList pl("fuzz");
    for (uint32_t i = 0; i < 200; ++i) {
        int len = int(rng() % 25); // 0..24
        uint32_t addr = rng();
        net::Prefix p(net::Ipv4Address(addr), len);
        std::optional<int> ge, le;
        switch (rng() % 4) {
        case 1:
            ge = len + int(rng() % (33 - len));
            break;
        case 2:
            le = len + int(rng() % (33 - len));
            break;
        case 3:
            ge = len + int(rng() % (33 - len));
            le = *ge + int(rng() % (33 - *ge));
            break;
        default:
            break;
        }
        pl.add(i * 5, rng() % 3 != 0, p, ge, le);
    }
    for (int probe = 0; probe < 4000; ++probe) {
        int len = int(rng() % 33);
        net::Prefix p(net::Ipv4Address(uint32_t(rng())), len);
        ASSERT_EQ(pl.evaluate(p), pl.evaluateLinear(p))
            << "probe " << p.toString();
    }
}

// ---------------------------------------------------------------------------
// AsPathSet / CommunityList.

TEST(AsPathSet, FirstMatchDecides)
{
    AsPathSet set("transit");
    set.add({/*seq=*/5, /*permit=*/false, /*contains=*/666,
             std::nullopt, std::nullopt, std::nullopt});
    set.add({10, true, std::nullopt, /*originAs=*/300, std::nullopt,
             std::nullopt});
    set.add({20, true, std::nullopt, std::nullopt, /*minLength=*/4,
             std::nullopt});

    EXPECT_EQ(set.evaluate(AsPath::sequence({100, 666, 300})),
              ListMatch::Deny);
    EXPECT_EQ(set.evaluate(AsPath::sequence({100, 300})),
              ListMatch::Permit);
    EXPECT_EQ(set.evaluate(AsPath::sequence({1, 2, 3, 4})),
              ListMatch::Permit);
    EXPECT_EQ(set.evaluate(AsPath::sequence({1, 2})),
              ListMatch::NoMatch);
}

TEST(AsPathSet, MaxLengthBound)
{
    AsPathSet set;
    set.add({5, true, std::nullopt, std::nullopt, std::nullopt,
             /*maxLength=*/2});
    EXPECT_EQ(set.evaluate(AsPath::sequence({1, 2})),
              ListMatch::Permit);
    EXPECT_EQ(set.evaluate(AsPath::sequence({1, 2, 3})),
              ListMatch::NoMatch);
}

TEST(CommunityList, FirstMatchDecides)
{
    CommunityList cl("customers");
    cl.add(5, false, 0x00010063); // deny 1:99
    cl.add(10, true, 0x00010001); // permit 1:1
    EXPECT_EQ(cl.evaluate({0x00010001, 0x00010063}), ListMatch::Deny);
    EXPECT_EQ(cl.evaluate({0x00010001}), ListMatch::Permit);
    EXPECT_EQ(cl.evaluate({0x00020002}), ListMatch::NoMatch);
}

// ---------------------------------------------------------------------------
// RouteMap semantics: first-match, deny, implicit deny, continue.

TEST(RouteMap, FirstMatchingEntryDecidesBySeq)
{
    RouteMap map("rm");
    RouteMapEntry low;
    low.seq = 10;
    low.set.localPref = 300;
    RouteMapEntry high;
    high.seq = 20;
    high.set.localPref = 100;
    map.add(high); // inserted out of order on purpose
    map.add(low);

    auto out = mapPolicy(std::move(map)).apply(pfx("10.0.0.0/24"),
                                               attrs({100}));
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(out->localPref, 300u);
}

TEST(RouteMap, MatchingDenyRejectsImmediately)
{
    RouteMap map("rm");
    RouteMapEntry deny;
    deny.seq = 10;
    deny.permit = false;
    deny.match.asPathContains = 666;
    RouteMapEntry permit;
    permit.seq = 20;
    map.add(deny).add(permit);
    Policy policy = mapPolicy(std::move(map));

    EXPECT_EQ(policy.apply(pfx("10.0.0.0/24"), attrs({666})), nullptr);
    EXPECT_NE(policy.apply(pfx("10.0.0.0/24"), attrs({100})), nullptr);
}

TEST(RouteMap, NativeMapHasImplicitDeny)
{
    RouteMap map("rm"); // NoMatch::Deny by default
    RouteMapEntry entry;
    entry.match.prefixCoveredBy = pfx("192.168.0.0/16");
    map.add(entry);
    Policy policy = mapPolicy(std::move(map));

    // Route matching no entry is dropped, Quagga-style.
    EXPECT_EQ(policy.apply(pfx("10.0.0.0/24"), attrs({100})), nullptr);
    EXPECT_NE(policy.apply(pfx("192.168.1.0/24"), attrs({100})),
              nullptr);
}

TEST(RouteMap, PermitNoMatchActionAcceptsUnmodified)
{
    RouteMap map("legacy", RouteMap::NoMatch::Permit);
    RouteMapEntry entry;
    entry.permit = false;
    entry.match.prefixCoveredBy = pfx("192.168.0.0/16");
    map.add(entry);
    Policy policy = mapPolicy(std::move(map));

    auto in = attrs({100});
    EXPECT_EQ(policy.apply(pfx("10.0.0.0/24"), in), in);
}

TEST(RouteMap, NamedListMustPermitForEntryToMatch)
{
    auto pl = std::make_shared<PrefixList>("pl");
    pl->add(5, false, pfx("10.1.0.0/16"), std::nullopt, 32);
    pl->add(10, true, pfx("10.0.0.0/8"), std::nullopt, 32);

    RouteMap map("rm");
    RouteMapEntry entry;
    entry.prefixList = pl;
    entry.set.localPref = 200;
    map.add(entry);
    Policy policy = mapPolicy(std::move(map));

    // Denied by the list -> the entry does not match -> implicit deny.
    EXPECT_EQ(policy.apply(pfx("10.1.2.0/24"), attrs({1})), nullptr);
    // Permitted by the list -> the entry matches and sets.
    auto out = policy.apply(pfx("10.2.0.0/24"), attrs({1}));
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(out->localPref, 200u);
    // Not covered by the list at all -> no match -> implicit deny.
    EXPECT_EQ(policy.apply(pfx("11.0.0.0/24"), attrs({1})), nullptr);
}

TEST(RouteMap, ContinueAccumulatesSetActions)
{
    RouteMap map("rm");
    RouteMapEntry first;
    first.seq = 10;
    first.set.localPref = 250;
    first.continueTo = 0; // resume at the next entry
    RouteMapEntry second;
    second.seq = 20;
    second.set.med = 7;
    map.add(first).add(second);

    auto out = mapPolicy(std::move(map)).apply(pfx("10.0.0.0/24"),
                                               attrs({100}));
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(out->localPref, 250u);
    EXPECT_EQ(out->med, 7u);
}

TEST(RouteMap, ContinueTargetSkipsIntermediateEntries)
{
    RouteMap map("rm");
    RouteMapEntry first;
    first.seq = 10;
    first.set.localPref = 250;
    first.continueTo = 30; // jump over seq 20
    RouteMapEntry skipped;
    skipped.seq = 20;
    skipped.set.med = 99;
    RouteMapEntry landed;
    landed.seq = 30;
    landed.set.med = 7;
    map.add(first).add(skipped).add(landed);

    auto out = mapPolicy(std::move(map)).apply(pfx("10.0.0.0/24"),
                                               attrs({100}));
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(out->localPref, 250u);
    EXPECT_EQ(out->med, 7u); // seq 20's med=99 never applied
}

TEST(RouteMap, DenyMatchedWhileContinuingRejects)
{
    RouteMap map("rm");
    RouteMapEntry first;
    first.seq = 10;
    first.set.localPref = 250;
    first.continueTo = 0;
    RouteMapEntry deny;
    deny.seq = 20;
    deny.permit = false;
    map.add(first).add(deny);

    EXPECT_EQ(mapPolicy(std::move(map))
                  .apply(pfx("10.0.0.0/24"), attrs({100})),
              nullptr);
}

TEST(RouteMap, RunningOffTheEndAfterPermitAccepts)
{
    RouteMap map("rm");
    RouteMapEntry only;
    only.seq = 10;
    only.set.localPref = 250;
    only.continueTo = 500; // beyond the last entry
    map.add(only);

    auto out = mapPolicy(std::move(map)).apply(pfx("10.0.0.0/24"),
                                               attrs({100}));
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(out->localPref, 250u);
}

TEST(RouteMap, BackwardContinueIsClampedForward)
{
    // A continue target at or before the entry's own seq must not
    // loop; it is clamped to the next entry and terminates.
    RouteMap map("rm");
    RouteMapEntry first;
    first.seq = 10;
    first.set.localPref = 250;
    first.continueTo = 10; // self-referential target
    RouteMapEntry second;
    second.seq = 20;
    second.set.med = 7;
    map.add(first).add(second);

    auto out = mapPolicy(std::move(map)).apply(pfx("10.0.0.0/24"),
                                               attrs({100}));
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(out->localPref, 250u);
    EXPECT_EQ(out->med, 7u);
}

// ---------------------------------------------------------------------------
// Set-actions.

TEST(RouteMap, SetCommunityReplacesBeforeAddDelete)
{
    RouteMap map("rm");
    RouteMapEntry entry;
    entry.set.replaceCommunities = true;
    entry.set.communities = {30, 10, 20}; // unsorted on purpose
    entry.set.addCommunities = {40};
    entry.set.deleteCommunities = {20};
    map.add(entry);

    auto out = mapPolicy(std::move(map))
                   .apply(pfx("10.0.0.0/24"), attrs({1}, {7, 8}));
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(out->communities, (std::vector<uint32_t>{10, 30, 40}));
}

TEST(RouteMap, SetCommunityNoneClearsAll)
{
    RouteMap map("rm");
    RouteMapEntry entry;
    entry.set.replaceCommunities = true; // empty replacement set
    map.add(entry);

    auto out = mapPolicy(std::move(map))
                   .apply(pfx("10.0.0.0/24"), attrs({1}, {7, 8}));
    ASSERT_NE(out, nullptr);
    EXPECT_TRUE(out->communities.empty());
}

TEST(RouteMap, SetNextHopRewrites)
{
    RouteMap map("rm");
    RouteMapEntry entry;
    entry.set.nextHop = net::Ipv4Address(172, 16, 0, 1);
    map.add(entry);

    auto out = mapPolicy(std::move(map)).apply(pfx("10.0.0.0/24"),
                                               attrs({1}));
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(out->nextHop, net::Ipv4Address(172, 16, 0, 1));
}

TEST(RouteMap, PrependAppliesOnExportOnly)
{
    RouteMap map("rm");
    RouteMapEntry entry;
    entry.set.prependCount = 2;
    map.add(entry);
    Policy policy = mapPolicy(std::move(map));

    auto in = attrs({100});
    auto exported = policy.apply(pfx("10.0.0.0/24"), in, 65000);
    ASSERT_NE(exported, nullptr);
    EXPECT_EQ(exported->asPath.pathLength(), 3);
    EXPECT_EQ(exported->asPath.firstAs(), 65000);
    // Import side (prepend_as = 0): a prepend-only entry changes
    // nothing, so the original pointer survives.
    EXPECT_EQ(policy.apply(pfx("10.0.0.0/24"), in, 0), in);
}

// ---------------------------------------------------------------------------
// Copy-on-write contract and evaluation stats.

TEST(RouteMapCow, UnchangedRouteKeepsInternedPointerIdentity)
{
    // Regression: an accepted route whose set-actions do not change
    // the bundle must come back as the *same* shared pointer — the
    // export memo and the interner depend on this.
    RouteMap map("rm");
    RouteMapEntry entry;
    entry.set.localPref = 100; // matches the incoming value
    map.add(entry);
    Policy policy = mapPolicy(std::move(map));

    PathAttributes a;
    a.asPath = AsPath::sequence({100, 200});
    a.nextHop = net::Ipv4Address(10, 0, 0, 1);
    a.localPref = 100;
    auto in = makeAttributes(std::move(a));

    PolicyEvalStats stats;
    auto out = policy.apply(pfx("10.0.0.0/24"), in, 0, &stats);
    EXPECT_EQ(out.get(), in.get());
    EXPECT_EQ(stats.evals, 1u);
    EXPECT_EQ(stats.cowHits, 1u);
    EXPECT_EQ(stats.cowCopies, 0u);
    EXPECT_EQ(stats.rejects, 0u);
    EXPECT_EQ(stats.cowHitRatio(), 1.0);
}

TEST(RouteMapCow, ChangedRouteIsCopiedOnceAndReinterned)
{
    RouteMap map("rm");
    RouteMapEntry entry;
    entry.set.localPref = 250;
    map.add(entry);
    Policy policy = mapPolicy(std::move(map));

    auto in = attrs({100, 200});
    PolicyEvalStats stats;
    auto first = policy.apply(pfx("10.0.0.0/24"), in, 0, &stats);
    auto second = policy.apply(pfx("10.0.1.0/24"), in, 0, &stats);
    ASSERT_NE(first, nullptr);
    EXPECT_NE(first.get(), in.get());
    EXPECT_EQ(first->localPref, 250u);
    // Re-canonicalised through the interner: the second application
    // of the identical transformation yields the same block.
    EXPECT_EQ(first.get(), second.get());
    EXPECT_EQ(stats.cowCopies, 2u);
    EXPECT_EQ(stats.cowHits, 0u);
    // Original untouched.
    EXPECT_FALSE(in->localPref.has_value());
}

TEST(RouteMapCow, StatsTallyAcrossDispositions)
{
    RouteMap map("rm");
    RouteMapEntry deny;
    deny.seq = 10;
    deny.permit = false;
    deny.match.asPathContains = 666;
    RouteMapEntry touch;
    touch.seq = 20;
    touch.match.asPathContains = 777;
    touch.set.med = 9;
    RouteMapEntry pass;
    pass.seq = 30;
    map.add(deny).add(touch).add(pass);
    Policy policy = mapPolicy(std::move(map));

    PolicyEvalStats stats;
    const net::Prefix p = pfx("10.0.0.0/24");
    EXPECT_EQ(policy.apply(p, attrs({666}), 0, &stats), nullptr);
    EXPECT_NE(policy.apply(p, attrs({777}), 0, &stats), nullptr);
    auto in = attrs({100});
    EXPECT_EQ(policy.apply(p, in, 0, &stats), in);

    EXPECT_EQ(stats.evals, 3u);
    EXPECT_EQ(stats.rejects, 1u);
    EXPECT_EQ(stats.cowCopies, 1u);
    EXPECT_EQ(stats.cowHits, 1u);
    EXPECT_EQ(stats.cowHitRatio(), 0.5);
}

TEST(RouteMapCow, MatchesEvaluateAgainstOriginalAttributes)
{
    // Set-actions accumulate but matches see the *original* bundle:
    // entry 10 sets the community that entry 20 matches on — entry 20
    // must not fire.
    RouteMap map("rm");
    RouteMapEntry first;
    first.seq = 10;
    first.set.addCommunities = {42};
    first.continueTo = 0;
    RouteMapEntry second;
    second.seq = 20;
    second.match.hasCommunity = 42;
    second.set.localPref = 999;
    map.add(first).add(second);

    auto out = mapPolicy(std::move(map)).apply(pfx("10.0.0.0/24"),
                                               attrs({100}));
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(out->communities, std::vector<uint32_t>{42});
    EXPECT_FALSE(out->localPref.has_value());
}

TEST(PolicyHandle, EmptinessReflectsMapSemantics)
{
    EXPECT_TRUE(Policy().empty());
    // A native empty map denies everything: decidedly not empty.
    Policy native = mapPolicy(RouteMap("rm"));
    EXPECT_FALSE(native.empty());
    EXPECT_EQ(native.apply(pfx("10.0.0.0/24"), attrs({1})), nullptr);
    // A legacy-style empty map accepts unmodified: empty.
    Policy legacy =
        mapPolicy(RouteMap("rm", RouteMap::NoMatch::Permit));
    EXPECT_TRUE(legacy.empty());
    EXPECT_EQ(Policy().size(), 0u);

    RouteMap sized("rm");
    sized.add(RouteMapEntry{});
    sized.add(RouteMapEntry{});
    EXPECT_EQ(mapPolicy(std::move(sized)).size(), 2u);
}
