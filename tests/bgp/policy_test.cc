/**
 * @file
 * Tests for the route-map-style policy engine.
 */

#include <gtest/gtest.h>

#include "bgp/policy.hh"

using namespace bgpbench;
using namespace bgpbench::bgp;

namespace
{

PathAttributesPtr
attrs(std::vector<AsNumber> path, std::vector<uint32_t> communities = {})
{
    PathAttributes a;
    a.asPath = AsPath::sequence(std::move(path));
    a.nextHop = net::Ipv4Address(10, 0, 0, 1);
    std::sort(communities.begin(), communities.end());
    a.communities = std::move(communities);
    return makeAttributes(std::move(a));
}

const net::Prefix p24 = net::Prefix::fromString("10.1.2.0/24");
const net::Prefix p16 = net::Prefix::fromString("10.1.0.0/16");

} // namespace

TEST(Policy, EmptyPolicyAcceptsUnmodified)
{
    Policy policy;
    auto in = attrs({100});
    auto out = policy.apply(p24, in);
    EXPECT_EQ(out, in); // same pointer: no copy taken
}

TEST(Policy, RejectRule)
{
    Policy policy = makeRejectPrefixPolicy(p16);
    EXPECT_EQ(policy.apply(p24, attrs({100})), nullptr);
    EXPECT_NE(policy.apply(net::Prefix::fromString("11.0.0.0/16"),
                           attrs({100})),
              nullptr);
}

TEST(Policy, FirstMatchWins)
{
    PolicyRule accept;
    accept.match.prefixCoveredBy = p16;
    accept.action.setLocalPref = 300;

    PolicyRule reject;
    reject.match.prefixCoveredBy = p16;
    reject.action.reject = true;

    Policy policy({accept, reject});
    auto out = policy.apply(p24, attrs({100}));
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(out->localPref, 300u);
}

TEST(Policy, NoMatchFallsThroughToAccept)
{
    PolicyRule reject;
    reject.match.prefixCoveredBy =
        net::Prefix::fromString("192.168.0.0/16");
    reject.action.reject = true;

    Policy policy({reject});
    auto in = attrs({100});
    EXPECT_EQ(policy.apply(p24, in), in);
}

TEST(Policy, MatchAsPathContains)
{
    PolicyRule rule;
    rule.match.asPathContains = 666;
    rule.action.reject = true;
    Policy policy({rule});

    EXPECT_EQ(policy.apply(p24, attrs({100, 666, 200})), nullptr);
    EXPECT_NE(policy.apply(p24, attrs({100, 200})), nullptr);
}

TEST(Policy, MatchOriginAs)
{
    PolicyRule rule;
    rule.match.originAs = 300;
    rule.action.setMed = 99;
    Policy policy({rule});

    auto hit = policy.apply(p24, attrs({100, 300}));
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit->med, 99u);

    auto in = attrs({300, 100}); // origin is 100, not 300
    EXPECT_EQ(policy.apply(p24, in), in);
}

TEST(Policy, MatchPrefixLengthBounds)
{
    PolicyRule rule;
    rule.match.minPrefixLength = 25; // reject long prefixes
    rule.action.reject = true;
    Policy policy({rule});

    EXPECT_EQ(policy.apply(net::Prefix::fromString("10.0.0.0/28"),
                           attrs({1})),
              nullptr);
    EXPECT_NE(policy.apply(p24, attrs({1})), nullptr);
}

TEST(Policy, MatchCommunity)
{
    PolicyRule rule;
    rule.match.hasCommunity = 0x00010002;
    rule.action.setLocalPref = 50;
    Policy policy({rule});

    auto hit = policy.apply(p24, attrs({1}, {0x00010002}));
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit->localPref, 50u);

    auto in = attrs({1}, {0x00010003});
    EXPECT_EQ(policy.apply(p24, in), in);
}

TEST(Policy, MatchMinAsPathLength)
{
    PolicyRule rule;
    rule.match.minAsPathLength = 3;
    rule.action.reject = true;
    Policy policy({rule});

    EXPECT_EQ(policy.apply(p24, attrs({1, 2, 3})), nullptr);
    EXPECT_NE(policy.apply(p24, attrs({1, 2})), nullptr);
}

TEST(Policy, SetActionsProduceNewAttributes)
{
    PolicyRule rule;
    rule.action.setLocalPref = 250;
    rule.action.setMed = 7;
    rule.action.addCommunity = 0xdead;
    Policy policy({rule});

    auto in = attrs({100});
    auto out = policy.apply(p24, in);
    ASSERT_NE(out, nullptr);
    EXPECT_NE(out, in); // modified: distinct block
    EXPECT_EQ(out->localPref, 250u);
    EXPECT_EQ(out->med, 7u);
    EXPECT_EQ(out->communities, std::vector<uint32_t>{0xdead});
    // Original untouched.
    EXPECT_FALSE(in->localPref.has_value());
}

TEST(Policy, AddCommunityIsIdempotent)
{
    PolicyRule rule;
    rule.action.addCommunity = 5;
    Policy policy({rule});
    auto out = policy.apply(p24, attrs({1}, {5, 9}));
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(out->communities, (std::vector<uint32_t>{5, 9}));
}

TEST(Policy, RemoveCommunity)
{
    PolicyRule rule;
    rule.action.removeCommunity = 5;
    Policy policy({rule});
    auto out = policy.apply(p24, attrs({1}, {3, 5, 9}));
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(out->communities, (std::vector<uint32_t>{3, 9}));
}

TEST(Policy, PrependOnExport)
{
    PolicyRule rule;
    rule.action.prependCount = 3;
    Policy policy({rule});

    auto out = policy.apply(p24, attrs({100}), 65000);
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(out->asPath.pathLength(), 4);
    EXPECT_EQ(out->asPath.firstAs(), 65000);
}

TEST(Policy, PrependIgnoredOnImport)
{
    PolicyRule rule;
    rule.action.prependCount = 3;
    Policy policy({rule});

    // prepend_as 0 = import side: prepending is meaningless and the
    // attributes pass through unmodified (same pointer).
    auto in = attrs({100});
    EXPECT_EQ(policy.apply(p24, in, 0), in);
}

TEST(Policy, LocalPrefForAsHelper)
{
    Policy policy = makeLocalPrefForAsPolicy(300, 500);
    auto hit = policy.apply(p24, attrs({100, 300}));
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit->localPref, 500u);
}

TEST(Policy, NullAttributesPassThrough)
{
    Policy policy;
    EXPECT_EQ(policy.apply(p24, nullptr), nullptr);
}
