/**
 * @file
 * Tests for the AS_PATH attribute.
 */

#include <gtest/gtest.h>

#include "bgp/as_path.hh"
#include "workload/rng.hh"

using namespace bgpbench;
using bgp::AsPath;

TEST(AsPath, EmptyPath)
{
    AsPath path;
    EXPECT_TRUE(path.empty());
    EXPECT_EQ(path.pathLength(), 0);
    EXPECT_EQ(path.firstAs(), 0);
    EXPECT_EQ(path.originAs(), 0);
    EXPECT_EQ(path.toString(), "");
}

TEST(AsPath, SequenceBasics)
{
    AsPath path = AsPath::sequence({100, 200, 300});
    EXPECT_EQ(path.pathLength(), 3);
    EXPECT_EQ(path.firstAs(), 100);
    EXPECT_EQ(path.originAs(), 300);
    EXPECT_TRUE(path.contains(200));
    EXPECT_FALSE(path.contains(400));
    EXPECT_EQ(path.toString(), "100 200 300");
}

TEST(AsPath, PrependExtendsLeadingSequence)
{
    AsPath path = AsPath::sequence({200, 300});
    path.prepend(100);
    EXPECT_EQ(path.pathLength(), 3);
    EXPECT_EQ(path.firstAs(), 100);
    EXPECT_EQ(path.segments().size(), 1u);
}

TEST(AsPath, PrependOntoEmptyCreatesSequence)
{
    AsPath path;
    path.prepend(42);
    EXPECT_EQ(path.pathLength(), 1);
    EXPECT_EQ(path.firstAs(), 42);
    EXPECT_EQ(path.originAs(), 42);
}

TEST(AsPath, PrependBeforeSetCreatesNewSegment)
{
    AsPath path;
    path.addSegment({AsPath::SegmentType::AsSet, {300, 400}});
    path.prepend(100);
    ASSERT_EQ(path.segments().size(), 2u);
    EXPECT_EQ(path.segments()[0].type,
              AsPath::SegmentType::AsSequence);
    EXPECT_EQ(path.firstAs(), 100);
}

TEST(AsPath, PrependSplitsFullSegment)
{
    std::vector<bgp::AsNumber> full(255, 7);
    AsPath path = AsPath::sequence(full);
    path.prepend(9);
    ASSERT_EQ(path.segments().size(), 2u);
    EXPECT_EQ(path.segments()[0].asns.size(), 1u);
    EXPECT_EQ(path.pathLength(), 256);
}

TEST(AsPath, SetCountsAsOneHop)
{
    AsPath path = AsPath::sequence({100});
    path.addSegment({AsPath::SegmentType::AsSet, {200, 300, 400}});
    EXPECT_EQ(path.pathLength(), 2);
    EXPECT_EQ(path.toString(), "100 {200,300,400}");
    EXPECT_EQ(path.originAs(), 400);
}

TEST(AsPath, EncodeDecodeRoundTrip)
{
    AsPath path = AsPath::sequence({100, 200});
    path.addSegment({AsPath::SegmentType::AsSet, {300, 400}});

    net::ByteWriter w;
    path.encodeValue(w);
    EXPECT_EQ(w.size(), path.encodedValueSize());

    auto bytes = w.take();
    net::ByteReader r(bytes);
    AsPath decoded = AsPath::decodeValue(r);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(decoded, path);
}

TEST(AsPath, DecodeRejectsBadSegmentType)
{
    std::vector<uint8_t> bytes = {9, 1, 0, 100};
    net::ByteReader r(bytes);
    AsPath::decodeValue(r);
    EXPECT_FALSE(r.ok());
}

TEST(AsPath, DecodeRejectsEmptySegment)
{
    std::vector<uint8_t> bytes = {2, 0};
    net::ByteReader r(bytes);
    AsPath::decodeValue(r);
    EXPECT_FALSE(r.ok());
}

TEST(AsPath, DecodeRejectsTruncatedSegment)
{
    std::vector<uint8_t> bytes = {2, 3, 0, 100, 0}; // promises 3 ASes
    net::ByteReader r(bytes);
    AsPath::decodeValue(r);
    EXPECT_FALSE(r.ok());
}

/** Property: encode/decode is the identity for random valid paths. */
TEST(AsPathProperty, RandomRoundTrip)
{
    workload::Rng rng(17);
    for (int trial = 0; trial < 300; ++trial) {
        AsPath path;
        int segments = int(rng.range(0, 4));
        for (int s = 0; s < segments; ++s) {
            AsPath::Segment seg;
            seg.type = rng.below(2) ? AsPath::SegmentType::AsSequence
                                    : AsPath::SegmentType::AsSet;
            int count = int(rng.range(1, 12));
            for (int i = 0; i < count; ++i)
                seg.asns.push_back(bgp::AsNumber(rng.range(1, 65535)));
            path.addSegment(std::move(seg));
        }

        net::ByteWriter w;
        path.encodeValue(w);
        auto bytes = w.take();
        ASSERT_EQ(bytes.size(), path.encodedValueSize());

        net::ByteReader r(bytes);
        AsPath decoded = AsPath::decodeValue(r);
        ASSERT_TRUE(r.ok());
        EXPECT_EQ(decoded, path);
        EXPECT_EQ(decoded.pathLength(), path.pathLength());
    }
}

/** Property: prepend increases pathLength by exactly one. */
TEST(AsPathProperty, PrependAddsOneHop)
{
    workload::Rng rng(19);
    AsPath path;
    for (int i = 0; i < 600; ++i) {
        int before = path.pathLength();
        auto asn = bgp::AsNumber(rng.range(1, 65535));
        path.prepend(asn);
        EXPECT_EQ(path.pathLength(), before + 1);
        EXPECT_EQ(path.firstAs(), asn);
        EXPECT_TRUE(path.contains(asn));
    }
}
