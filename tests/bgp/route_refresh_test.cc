/**
 * @file
 * Tests for ROUTE-REFRESH (RFC 2918): codec, FSM, and the speaker's
 * full-table re-advertisement.
 */

#include <gtest/gtest.h>

#include "bgp/message.hh"
#include "bgp/session.hh"
#include "bgp/speaker.hh"

#include <deque>

using namespace bgpbench;
using namespace bgpbench::bgp;

TEST(RouteRefresh, CodecRoundTrip)
{
    RouteRefreshMessage refresh;
    refresh.afi = 1;
    refresh.safi = 1;
    auto wire = encodeMessage(refresh);
    EXPECT_EQ(wire.size(), proto::headerBytes + 4);

    DecodeError error;
    auto msg = decodeMessage(wire, error);
    ASSERT_TRUE(msg.has_value()) << error.detail;
    ASSERT_EQ(messageType(*msg), MessageType::RouteRefresh);
    const auto &decoded = std::get<RouteRefreshMessage>(*msg);
    EXPECT_EQ(decoded.afi, 1);
    EXPECT_EQ(decoded.safi, 1);
}

TEST(RouteRefresh, BadLengthRejected)
{
    auto wire = encodeMessage(RouteRefreshMessage{});
    wire.push_back(0);
    wire[17] = uint8_t(wire.size());
    DecodeError error;
    EXPECT_FALSE(decodeMessage(wire, error).has_value());
    EXPECT_EQ(error.subcode,
              uint8_t(HeaderSubcode::BadMessageLength));
}

TEST(RouteRefresh, FsmRequiresEstablished)
{
    SessionConfig config;
    config.localAs = 65000;
    config.localId = 1;
    SessionFsm fsm(config);
    std::vector<Message> tx;
    fsm.start(0);
    fsm.tcpEstablished(0, tx);
    tx.clear();

    EXPECT_FALSE(fsm.handleMessage(RouteRefreshMessage{}, 0, tx));
    EXPECT_EQ(fsm.state(), SessionState::Idle);
    ASSERT_EQ(tx.size(), 1u);
    EXPECT_EQ(std::get<NotificationMessage>(tx[0]).errorCode,
              ErrorCode::FsmError);
}

TEST(RouteRefresh, RefreshesHoldTimer)
{
    SessionConfig config;
    config.localAs = 65000;
    config.localId = 1;
    config.holdTimeSec = 30;
    SessionFsm fsm(config);
    std::vector<Message> tx;
    fsm.start(0);
    fsm.tcpEstablished(0, tx);
    OpenMessage open;
    open.myAs = 0;
    open.myAs = 65001;
    open.holdTimeSec = 30;
    open.bgpIdentifier = 9;
    fsm.handleMessage(open, 0, tx);
    fsm.handleMessage(KeepaliveMessage{}, 0, tx);
    ASSERT_TRUE(fsm.established());

    constexpr uint64_t sec = 1'000'000'000ull;
    fsm.handleMessage(RouteRefreshMessage{}, 25 * sec, tx);
    tx.clear();
    // Without the refresh the hold timer (30 s) would have fired.
    EXPECT_TRUE(fsm.poll(40 * sec, tx));
    EXPECT_TRUE(fsm.established());
}

namespace
{

/** Two speakers wired through a queued transport; counts what b
 *  receives. */
struct RefreshWorld : public SpeakerEvents
{
    std::unique_ptr<BgpSpeaker> a;
    std::unique_ptr<BgpSpeaker> b;
    BgpSpeaker *sender = nullptr;
    size_t bUpdates = 0;
    size_t bPrefixes = 0;
    std::deque<std::pair<BgpSpeaker *, net::WireSegmentPtr>> queue;

    RefreshWorld()
    {
        SpeakerConfig ca;
        ca.localAs = 65001;
        ca.routerId = 1;
        ca.localAddress = net::Ipv4Address(10, 0, 0, 1);
        a = std::make_unique<BgpSpeaker>(ca, this);

        SpeakerConfig cb;
        cb.localAs = 65002;
        cb.routerId = 2;
        cb.localAddress = net::Ipv4Address(10, 0, 0, 2);
        b = std::make_unique<BgpSpeaker>(cb, this);

        PeerConfig pa;
        pa.id = 0;
        pa.asn = 65002;
        a->addPeer(pa);
        PeerConfig pb;
        pb.id = 0;
        pb.asn = 65001;
        b->addPeer(pb);

        // Queue both OPENs before delivering anything, so each side
        // is in OpenSent when the peer's OPEN arrives.
        sender = a.get();
        a->startPeer(0, 0);
        a->tcpEstablished(0, 0);
        sender = b.get();
        b->startPeer(0, 0);
        b->tcpEstablished(0, 0);
        sender = nullptr;
        pump();
    }

    void
    onTransmit(PeerId, MessageType type, net::WireSegmentPtr wire,
               size_t transactions) override
    {
        BgpSpeaker *to = sender == a.get() ? b.get() : a.get();
        if (to == b.get() && type == MessageType::Update) {
            ++bUpdates;
            bPrefixes += transactions;
        }
        queue.emplace_back(to, std::move(wire));
    }

    void
    pump()
    {
        while (!queue.empty()) {
            auto [to, wire] = std::move(queue.front());
            queue.pop_front();
            BgpSpeaker *prev = sender;
            sender = to;
            to->receiveSegment(0, std::move(wire), 0);
            sender = prev;
        }
    }

    /** Run @p fn attributed to @p speaker, then deliver everything. */
    void
    act(BgpSpeaker &speaker, const std::function<void()> &fn)
    {
        BgpSpeaker *prev = sender;
        sender = &speaker;
        fn();
        sender = prev;
        pump();
    }
};

} // namespace

TEST(RouteRefresh, SpeakerResendsFullTable)
{
    RefreshWorld world;
    ASSERT_EQ(world.a->sessionState(0), SessionState::Established);

    // a originates 20 routes; b hears them once.
    world.act(*world.a, [&]() {
        for (uint32_t i = 0; i < 20; ++i) {
            PathAttributes attrs;
            attrs.nextHop = net::Ipv4Address(10, 0, 0, 1);
            world.a->originate(
                net::Prefix(net::Ipv4Address(10, uint8_t(i), 0, 0),
                            16),
                makeAttributes(std::move(attrs)), 0);
        }
    });
    ASSERT_EQ(world.b->locRib().size(), 20u);
    size_t prefixes_before = world.bPrefixes;

    // b asks for a refresh: a re-sends all 20 routes.
    world.act(*world.a, [&]() {
        world.a->receiveBytes(
            0, encodeMessage(RouteRefreshMessage{}), 0);
    });

    EXPECT_EQ(world.bPrefixes, prefixes_before + 20);
    // b's table is unchanged (idempotent re-advertisement).
    EXPECT_EQ(world.b->locRib().size(), 20u);
}
