/**
 * @file
 * Tests for route flap damping (RFC 2439), standalone and integrated
 * into the speaker.
 */

#include <gtest/gtest.h>

#include <deque>
#include <map>

#include "bgp/damping.hh"
#include "bgp/speaker.hh"

using namespace bgpbench;
using namespace bgpbench::bgp;

namespace
{

constexpr uint64_t sec = 1'000'000'000ull;

DampingConfig
testConfig()
{
    DampingConfig config;
    config.enabled = true;
    config.withdrawPenalty = 1000;
    config.reAnnouncePenalty = 500;
    config.attributeChangePenalty = 500;
    config.suppressThreshold = 2000;
    config.reuseThreshold = 750;
    config.halfLifeSec = 900;
    return config;
}

const net::Prefix p = net::Prefix::fromString("10.1.0.0/16");

} // namespace

TEST(FlapDamper, DisabledDoesNothing)
{
    FlapDamper damper(DampingConfig{}); // enabled = false
    EXPECT_FALSE(damper.onWithdraw(1, p, 0));
    EXPECT_FALSE(damper.onAnnounce(1, p, true, 0));
    EXPECT_FALSE(damper.isSuppressed(1, p, 0));
    EXPECT_EQ(damper.trackedRoutes(), 0u);
}

TEST(FlapDamper, FreshAnnouncementCarriesNoPenalty)
{
    FlapDamper damper(testConfig());
    EXPECT_FALSE(damper.onAnnounce(1, p, false, 0));
    EXPECT_EQ(damper.penalty(1, p, 0), 0.0);
}

TEST(FlapDamper, SingleWithdrawDoesNotSuppress)
{
    FlapDamper damper(testConfig());
    EXPECT_FALSE(damper.onWithdraw(1, p, 0));
    EXPECT_NEAR(damper.penalty(1, p, 0), 1000.0, 1e-9);
    EXPECT_FALSE(damper.isSuppressed(1, p, 0));
}

TEST(FlapDamper, RepeatedFlapsSuppress)
{
    FlapDamper damper(testConfig());
    // withdraw (1000) + re-announce (500) + withdraw (1000) = 2500.
    EXPECT_FALSE(damper.onWithdraw(1, p, 0));
    EXPECT_FALSE(damper.onAnnounce(1, p, false, 1 * sec));
    EXPECT_TRUE(damper.onWithdraw(1, p, 2 * sec));
    EXPECT_TRUE(damper.isSuppressed(1, p, 2 * sec));
}

TEST(FlapDamper, PenaltyDecaysWithHalfLife)
{
    FlapDamper damper(testConfig());
    damper.onWithdraw(1, p, 0);
    EXPECT_NEAR(damper.penalty(1, p, 900 * sec), 500.0, 1.0);
    EXPECT_NEAR(damper.penalty(1, p, 1800 * sec), 250.0, 1.0);
}

TEST(FlapDamper, SuppressionLapsesAtReuseThreshold)
{
    FlapDamper damper(testConfig());
    damper.onWithdraw(1, p, 0);
    damper.onAnnounce(1, p, false, 0);
    damper.onWithdraw(1, p, 0); // penalty 2500, suppressed
    ASSERT_TRUE(damper.isSuppressed(1, p, 0));

    // 2500 -> 750 takes halfLife * log2(2500/750) ~ 1563 s.
    EXPECT_TRUE(damper.isSuppressed(1, p, 1500 * sec));
    EXPECT_FALSE(damper.isSuppressed(1, p, 1700 * sec));
}

TEST(FlapDamper, PenaltyCapped)
{
    FlapDamper damper(testConfig());
    for (int i = 0; i < 100; ++i)
        damper.onWithdraw(1, p, 0);
    EXPECT_LE(damper.penalty(1, p, 0), testConfig().maxPenalty);
}

TEST(FlapDamper, PeersTrackedIndependently)
{
    FlapDamper damper(testConfig());
    damper.onWithdraw(1, p, 0);
    damper.onAnnounce(1, p, false, 0);
    damper.onWithdraw(1, p, 0);
    EXPECT_TRUE(damper.isSuppressed(1, p, 0));
    EXPECT_FALSE(damper.isSuppressed(2, p, 0));
    EXPECT_EQ(damper.suppressedCount(0), 1u);
}

TEST(FlapDamper, TakeReusableReportsLapsedRoutes)
{
    FlapDamper damper(testConfig());
    damper.onWithdraw(1, p, 0);
    damper.onAnnounce(1, p, false, 0);
    damper.onWithdraw(1, p, 0);
    ASSERT_TRUE(damper.isSuppressed(1, p, 0));

    EXPECT_TRUE(damper.takeReusable(100 * sec).empty());

    auto reusable = damper.takeReusable(2000 * sec);
    ASSERT_EQ(reusable.size(), 1u);
    EXPECT_EQ(reusable[0].first, PeerId(1));
    EXPECT_EQ(reusable[0].second, p);
}

TEST(FlapDamper, GarbageCollectsDecayedHistories)
{
    FlapDamper damper(testConfig());
    damper.onWithdraw(1, p, 0);
    EXPECT_EQ(damper.trackedRoutes(), 1u);
    // After many half-lives the entry decays to noise and is dropped.
    damper.takeReusable(20000 * sec);
    EXPECT_EQ(damper.trackedRoutes(), 0u);
}

// ---------------------------------------------------------------------
// Decay/suppress/reuse boundaries under ns-granularity virtual time.
// ---------------------------------------------------------------------

TEST(FlapDamper, DecayIsExactAtWholeHalfLives)
{
    FlapDamper damper(testConfig());
    damper.onWithdraw(1, p, 0);
    // exp2(-1.0) is exactly 0.5 in IEEE arithmetic, so whole
    // half-lives halve the penalty with no drift.
    EXPECT_DOUBLE_EQ(damper.penalty(1, p, 900 * sec), 500.0);
    EXPECT_DOUBLE_EQ(damper.penalty(1, p, 1800 * sec), 250.0);
    EXPECT_DOUBLE_EQ(damper.penalty(1, p, 2700 * sec), 125.0);
}

TEST(FlapDamper, ReadsDoNotPerturbTheTrajectory)
{
    // The anchor-based decay never rebases on a read: a damper that
    // is queried at arbitrary intermediate instants must stay
    // bit-identical to one that is not. (The old implementation
    // rewrote penalty/lastUpdate on every read and accumulated
    // truncation at ns granularity, shifting suppress/reuse
    // boundaries with query frequency.)
    FlapDamper quiet(testConfig());
    FlapDamper polled(testConfig());

    auto flap = [&](FlapDamper &damper, uint64_t at) {
        damper.onWithdraw(1, p, at);
        damper.onAnnounce(1, p, false, at + sec / 2);
    };
    flap(quiet, 0);
    flap(polled, 0);
    // Hammer one damper with reads at awkward offsets.
    for (uint64_t t = 1; t < 900; t += 7) {
        polled.penalty(1, p, t * sec + 123456789);
        polled.isSuppressed(1, p, t * sec + 987654321);
    }
    flap(quiet, 900 * sec);
    flap(polled, 900 * sec);

    for (uint64_t t : {901ull, 1000ull, 1563ull, 2000ull, 3000ull}) {
        EXPECT_DOUBLE_EQ(quiet.penalty(1, p, t * sec),
                         polled.penalty(1, p, t * sec))
            << "at t=" << t;
        EXPECT_EQ(quiet.isSuppressed(1, p, t * sec),
                  polled.isSuppressed(1, p, t * sec))
            << "at t=" << t;
    }
    EXPECT_EQ(quiet.nextReuseTime(2000 * sec),
              polled.nextReuseTime(2000 * sec));
}

TEST(FlapDamper, ReuseBoundaryIsExact)
{
    FlapDamper damper(testConfig());
    damper.onWithdraw(1, p, 0);
    damper.onAnnounce(1, p, false, 0);
    damper.onWithdraw(1, p, 0); // penalty 2500 at anchor 0
    ASSERT_TRUE(damper.isSuppressed(1, p, 0));

    // 2500 decays to the reuse threshold 750 after
    // halfLife * log2(2500/750) ~ 1563.27 s; nextReuseTime rounds
    // the crossing up to whole ns, so at that instant the route is
    // reusable and one ns earlier it is not.
    uint64_t at = damper.nextReuseTime(0);
    ASSERT_NE(at, 0u);
    EXPECT_NEAR(double(at) / double(sec), 1563.27, 0.01);
    EXPECT_TRUE(damper.isSuppressed(1, p, at - 1));
    EXPECT_FALSE(damper.isSuppressed(1, p, at));

    auto reusable = damper.takeReusable(at);
    ASSERT_EQ(reusable.size(), 1u);
    EXPECT_EQ(reusable[0].second, p);
    // Cleared: no more suppressed routes, no more reuse deadline.
    EXPECT_EQ(damper.suppressedCount(at), 0u);
    EXPECT_EQ(damper.nextReuseTime(at), 0u);
}

TEST(FlapDamper, NextReuseTimeIsZeroWithoutSuppression)
{
    FlapDamper damper(testConfig());
    EXPECT_EQ(damper.nextReuseTime(0), 0u);
    damper.onWithdraw(1, p, 0); // penalty 1000: below suppress
    EXPECT_EQ(damper.nextReuseTime(0), 0u);
}

TEST(FlapDamper, TransitionCountersCountEpisodesNotEvents)
{
    FlapDamper damper(testConfig());
    EXPECT_EQ(damper.suppressTransitions(), 0u);
    EXPECT_EQ(damper.reuseTransitions(), 0u);

    damper.onWithdraw(1, p, 0);
    damper.onAnnounce(1, p, false, 0);
    damper.onWithdraw(1, p, 0); // crosses 2000: one suppression
    EXPECT_EQ(damper.suppressTransitions(), 1u);
    // More flaps inside the same episode do not re-count.
    damper.onAnnounce(1, p, false, sec);
    damper.onWithdraw(1, p, 2 * sec);
    EXPECT_EQ(damper.suppressTransitions(), 1u);

    uint64_t at = damper.nextReuseTime(2 * sec);
    ASSERT_NE(at, 0u);
    EXPECT_EQ(damper.takeReusable(at).size(), 1u);
    EXPECT_EQ(damper.reuseTransitions(), 1u);

    // A fresh flap burst afterwards is a second episode.
    damper.onWithdraw(1, p, at);
    damper.onAnnounce(1, p, false, at + sec);
    damper.onWithdraw(1, p, at + 2 * sec);
    EXPECT_EQ(damper.suppressTransitions(), 2u);
}

// ---------------------------------------------------------------------
// Speaker integration: a flapping route gets suppressed and recovers.
// ---------------------------------------------------------------------

namespace
{

/** Minimal harness: one speaker fed raw wire messages. */
class Harness : public SpeakerEvents
{
  public:
    explicit Harness(DampingConfig damping)
    {
        SpeakerConfig config;
        config.localAs = 65000;
        config.routerId = 1;
        config.localAddress = net::Ipv4Address(10, 0, 0, 1);
        // Hold timer disabled: damping-recovery tests jump thousands
        // of seconds ahead without traffic.
        config.holdTimeSec = 0;
        config.damping = damping;
        speaker = std::make_unique<BgpSpeaker>(config, this);

        PeerConfig peer;
        peer.id = 0;
        peer.asn = 65001;
        speaker->addPeer(peer);
        speaker->startPeer(0, 0);
        speaker->tcpEstablished(0, 0);

        OpenMessage open;
        open.myAs = 65001;
        open.holdTimeSec = 0;
        open.bgpIdentifier = 99;
        speaker->handleMessage(0, open, 0);
        speaker->handleMessage(0, KeepaliveMessage{}, 0);
    }

    void
    onTransmit(PeerId, MessageType, net::WireSegmentPtr,
               size_t) override
    {}

    void
    announce(const net::Prefix &prefix, uint64_t now)
    {
        PathAttributes attrs;
        attrs.asPath = AsPath::sequence({65001});
        attrs.nextHop = net::Ipv4Address(10, 0, 1, 2);
        UpdateMessage update;
        update.attributes = makeAttributes(std::move(attrs));
        update.nlri = {prefix};
        speaker->handleMessage(0, update, now);
    }

    void
    withdraw(const net::Prefix &prefix, uint64_t now)
    {
        UpdateMessage update;
        update.withdrawnRoutes = {prefix};
        speaker->handleMessage(0, update, now);
    }

    std::unique_ptr<BgpSpeaker> speaker;
};

} // namespace

TEST(SpeakerDamping, FlappingRouteGetsSuppressed)
{
    Harness h(testConfig());

    h.announce(p, 0);
    EXPECT_NE(h.speaker->locRib().find(p), nullptr);

    // Flap: withdraw + announce + withdraw crosses the threshold.
    h.withdraw(p, 1 * sec);
    h.announce(p, 2 * sec);
    h.withdraw(p, 3 * sec);
    h.announce(p, 4 * sec);

    // The route is announced and stored, but suppressed: not in the
    // Loc-RIB.
    EXPECT_NE(h.speaker->adjRibIn(0).find(p), nullptr);
    EXPECT_EQ(h.speaker->locRib().find(p), nullptr);
    EXPECT_GT(h.speaker->counters().announcementsSuppressed, 0u);
}

TEST(SpeakerDamping, SuppressedRouteRecoversViaTimers)
{
    Harness h(testConfig());
    h.announce(p, 0);
    h.withdraw(p, 1 * sec);
    h.announce(p, 2 * sec);
    h.withdraw(p, 3 * sec);
    h.announce(p, 4 * sec);
    ASSERT_EQ(h.speaker->locRib().find(p), nullptr);

    // Long quiet period: the penalty decays; the timer poll reuses
    // the route.
    h.speaker->pollTimers(4000 * sec);
    EXPECT_NE(h.speaker->locRib().find(p), nullptr);
}

TEST(SpeakerDamping, DisabledByDefault)
{
    Harness h(DampingConfig{});
    h.announce(p, 0);
    for (int i = 0; i < 10; ++i) {
        h.withdraw(p, uint64_t(2 * i + 1) * sec);
        h.announce(p, uint64_t(2 * i + 2) * sec);
    }
    // Never suppressed without damping.
    EXPECT_NE(h.speaker->locRib().find(p), nullptr);
    EXPECT_EQ(h.speaker->counters().announcementsSuppressed, 0u);
}

TEST(SpeakerDamping, StableRoutesUnaffected)
{
    Harness h(testConfig());
    const auto q = net::Prefix::fromString("10.2.0.0/16");
    h.announce(p, 0);
    h.announce(q, 0);
    // p flaps; q stays stable.
    h.withdraw(p, 1 * sec);
    h.announce(p, 2 * sec);
    h.withdraw(p, 3 * sec);
    h.announce(p, 4 * sec);

    EXPECT_EQ(h.speaker->locRib().find(p), nullptr);
    EXPECT_NE(h.speaker->locRib().find(q), nullptr);
}
