/**
 * @file
 * Tests for the decision process's preference order.
 */

#include <gtest/gtest.h>

#include "bgp/decision.hh"
#include "workload/rng.hh"

using namespace bgpbench;
using namespace bgpbench::bgp;

namespace
{

Candidate
candidate(std::vector<AsNumber> path, uint32_t peer = 1,
          RouterId router_id = 10, bool external = true)
{
    PathAttributes attrs;
    attrs.asPath = AsPath::sequence(std::move(path));
    attrs.nextHop = net::Ipv4Address(10, 0, 0, uint8_t(peer));
    return Candidate{makeAttributes(std::move(attrs)), peer,
                     router_id, external};
}

Candidate
withLocalPref(Candidate c, uint32_t lp)
{
    PathAttributes attrs = *c.attributes;
    attrs.localPref = lp;
    c.attributes = makeAttributes(std::move(attrs));
    return c;
}

Candidate
withMed(Candidate c, uint32_t med)
{
    PathAttributes attrs = *c.attributes;
    attrs.med = med;
    c.attributes = makeAttributes(std::move(attrs));
    return c;
}

Candidate
withOrigin(Candidate c, Origin origin)
{
    PathAttributes attrs = *c.attributes;
    attrs.origin = origin;
    c.attributes = makeAttributes(std::move(attrs));
    return c;
}

} // namespace

TEST(Decision, HigherLocalPrefWins)
{
    auto a = withLocalPref(candidate({100, 200, 300}), 200);
    auto b = withLocalPref(candidate({100}), 100);
    // Despite the longer path, higher LOCAL_PREF wins.
    EXPECT_LT(compareCandidates(a, b), 0);
    EXPECT_GT(compareCandidates(b, a), 0);
}

TEST(Decision, AbsentLocalPrefUsesDefault)
{
    DecisionConfig config;
    config.defaultLocalPref = 100;
    auto a = candidate({100});                       // default 100
    auto b = withLocalPref(candidate({100, 200}), 150);
    EXPECT_GT(compareCandidates(a, b, config), 0); // b preferred
}

TEST(Decision, ShorterAsPathWins)
{
    auto a = candidate({100, 200});
    auto b = candidate({100, 200, 300});
    EXPECT_LT(compareCandidates(a, b), 0);
}

TEST(Decision, AsSetCountsAsOneHop)
{
    auto a = candidate({100, 200});   // length 2
    Candidate b = candidate({100});   // 1 + set = 2
    {
        PathAttributes attrs = *b.attributes;
        attrs.asPath.addSegment(
            {AsPath::SegmentType::AsSet, {300, 400, 500}});
        b.attributes = makeAttributes(std::move(attrs));
    }
    // Equal path length: falls through to later tie-breakers
    // (equal here except peer id).
    a.peerRouterId = 1;
    b.peerRouterId = 2;
    EXPECT_LT(compareCandidates(a, b), 0);
}

TEST(Decision, LowerOriginWins)
{
    auto a = withOrigin(candidate({100}), Origin::Igp);
    auto b = withOrigin(candidate({100}, 2, 20), Origin::Incomplete);
    EXPECT_LT(compareCandidates(a, b), 0);
}

TEST(Decision, MedComparedForSameNeighborAs)
{
    auto a = withMed(candidate({100, 300}), 10);
    auto b = withMed(candidate({100, 400}, 2, 20), 5);
    // Same first AS (100): lower MED wins.
    EXPECT_GT(compareCandidates(a, b), 0);
}

TEST(Decision, MedIgnoredAcrossNeighborAses)
{
    DecisionConfig config;
    config.alwaysCompareMed = false;
    auto a = withMed(candidate({100, 300}, 1, 10), 50);
    auto b = withMed(candidate({200, 300}, 2, 20), 5);
    // Different first AS: MED skipped; tie broken by router id.
    EXPECT_LT(compareCandidates(a, b, config), 0);
}

TEST(Decision, AlwaysCompareMedOverridesNeighborCheck)
{
    DecisionConfig config;
    config.alwaysCompareMed = true;
    auto a = withMed(candidate({100, 300}, 1, 10), 50);
    auto b = withMed(candidate({200, 300}, 2, 20), 5);
    EXPECT_GT(compareCandidates(a, b, config), 0);
}

TEST(Decision, MissingMedTreatedAsZero)
{
    auto a = candidate({100, 300});              // no MED = 0
    auto b = withMed(candidate({100, 400}, 2, 20), 5);
    EXPECT_LT(compareCandidates(a, b), 0);
}

TEST(Decision, EbgpPreferredOverIbgp)
{
    auto a = candidate({100}, 1, 10, false); // iBGP
    auto b = candidate({100}, 2, 20, true);  // eBGP
    EXPECT_GT(compareCandidates(a, b), 0);
}

TEST(Decision, LowestRouterIdBreaksFinalTie)
{
    auto a = candidate({100}, 1, 42, true);
    auto b = candidate({100}, 2, 7, true);
    EXPECT_GT(compareCandidates(a, b), 0);
}

TEST(Decision, IdenticalCandidatesCompareEqual)
{
    auto a = candidate({100}, 1, 10, true);
    auto b = candidate({100}, 2, 10, true);
    EXPECT_EQ(compareCandidates(a, b), 0);
}

TEST(Decision, SelectBestEmptyReturnsNothing)
{
    EXPECT_FALSE(selectBest({}).has_value());
}

TEST(Decision, SelectBestPicksMinimum)
{
    std::vector<Candidate> candidates = {
        candidate({100, 200, 300}, 1, 10),
        candidate({100}, 2, 20),
        candidate({100, 200}, 3, 30),
    };
    auto best = selectBest(candidates);
    ASSERT_TRUE(best.has_value());
    EXPECT_EQ(*best, 1u);
}

/**
 * Property: with always-compare-med the comparison is a strict weak
 * ordering. (The RFC's neighbor-AS-conditional MED rule is famously
 * NOT transitive — the root of real-world MED oscillation — so the
 * property only holds in the always-compare configuration.)
 */
TEST(DecisionProperty, StrictWeakOrdering)
{
    DecisionConfig config;
    config.alwaysCompareMed = true;
    workload::Rng rng(23);
    std::vector<Candidate> pool;
    for (int i = 0; i < 24; ++i) {
        std::vector<AsNumber> path;
        int hops = int(rng.range(1, 4));
        for (int h = 0; h < hops; ++h)
            path.push_back(AsNumber(rng.range(100, 110)));
        Candidate c = candidate(std::move(path),
                                uint32_t(rng.range(1, 4)),
                                RouterId(rng.range(1, 4)),
                                rng.below(2) == 0);
        if (rng.below(2))
            c = withLocalPref(c, uint32_t(rng.range(50, 150)));
        if (rng.below(2))
            c = withMed(c, uint32_t(rng.range(0, 10)));
        pool.push_back(std::move(c));
    }

    for (const auto &a : pool) {
        EXPECT_EQ(compareCandidates(a, a, config), 0);
        for (const auto &b : pool) {
            // Antisymmetry.
            EXPECT_EQ(compareCandidates(a, b, config) < 0,
                      compareCandidates(b, a, config) > 0);
            for (const auto &c : pool) {
                // Transitivity of strict preference.
                if (compareCandidates(a, b, config) < 0 &&
                    compareCandidates(b, c, config) < 0) {
                    EXPECT_LT(compareCandidates(a, c, config), 0);
                }
            }
        }
    }
}

/**
 * Documenting test: the conditional MED rule (RFC 4271 9.1.2.2 c) is
 * intransitive. Three routes can form a preference cycle.
 */
TEST(Decision, ConditionalMedIsIntransitive)
{
    DecisionConfig config;
    config.alwaysCompareMed = false;

    // a: via AS 100, MED 10, router id 30
    // b: via AS 100, MED 50, router id 10
    // c: via AS 200, no MED, router id 20
    auto a = withMed(candidate({100, 900}, 1, 30), 10);
    auto b = withMed(candidate({100, 901}, 2, 10), 50);
    auto c = candidate({200, 902}, 3, 20);

    // a beats b on MED (same neighbor AS).
    EXPECT_LT(compareCandidates(a, b, config), 0);
    // b beats c on router id (MED not comparable).
    EXPECT_LT(compareCandidates(b, c, config), 0);
    // ...but c beats a on router id: a cycle.
    EXPECT_LT(compareCandidates(c, a, config), 0);
}

/** Property: selectBest returns an element no other one beats. */
TEST(DecisionProperty, SelectBestIsUnbeaten)
{
    workload::Rng rng(29);
    for (int trial = 0; trial < 100; ++trial) {
        std::vector<Candidate> candidates;
        int n = int(rng.range(1, 10));
        for (int i = 0; i < n; ++i) {
            std::vector<AsNumber> path;
            int hops = int(rng.range(1, 5));
            for (int h = 0; h < hops; ++h)
                path.push_back(AsNumber(rng.range(100, 200)));
            candidates.push_back(candidate(
                std::move(path), uint32_t(i + 1),
                RouterId(rng.range(1, 100)), rng.below(2) == 0));
        }
        auto best = selectBest(candidates);
        ASSERT_TRUE(best.has_value());
        for (const auto &other : candidates) {
            EXPECT_LE(compareCandidates(candidates[*best], other), 0);
        }
    }
}
