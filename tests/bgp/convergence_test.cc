/**
 * @file
 * Convergence property test: on a random policy-free eBGP topology,
 * BGP's path-vector protocol must converge so every speaker holds a
 * shortest-AS-path route to every originated prefix — checked against
 * a BFS oracle over the topology graph.
 */

#include <gtest/gtest.h>

#include <deque>
#include <map>
#include <queue>

#include "bgp/speaker.hh"
#include "workload/rng.hh"

using namespace bgpbench;
using namespace bgpbench::bgp;

namespace
{

/** Random eBGP internetwork with a queued transport. */
class Internet
{
  public:
    struct Node;

    struct Events : public SpeakerEvents
    {
        Internet *net = nullptr;
        size_t self = 0;

        void
        onTransmit(PeerId to, MessageType, net::WireSegmentPtr wire,
                   size_t) override
        {
            net->queue_.push_back({self, to, std::move(wire)});
        }
    };

    struct Node
    {
        Events events;
        std::unique_ptr<BgpSpeaker> speaker;
        std::map<PeerId, std::pair<size_t, PeerId>> wiring;
        std::vector<size_t> neighbours;
        PeerId nextPeerId = 0;
    };

    size_t
    addSpeaker()
    {
        auto node = std::make_unique<Node>();
        node->events.net = this;
        node->events.self = nodes_.size();
        SpeakerConfig config;
        config.localAs = AsNumber(100 + nodes_.size());
        config.routerId = RouterId(1 + nodes_.size());
        config.localAddress = net::Ipv4Address(
            10, 200, uint8_t(nodes_.size()), 1);
        node->speaker =
            std::make_unique<BgpSpeaker>(config, &node->events);
        nodes_.push_back(std::move(node));
        return nodes_.size() - 1;
    }

    void
    connect(size_t a, size_t b)
    {
        PeerId pa = nodes_[a]->nextPeerId++;
        PeerId pb = nodes_[b]->nextPeerId++;

        PeerConfig ca;
        ca.id = pa;
        ca.asn = nodes_[b]->speaker->config().localAs;
        nodes_[a]->speaker->addPeer(ca);
        PeerConfig cb;
        cb.id = pb;
        cb.asn = nodes_[a]->speaker->config().localAs;
        nodes_[b]->speaker->addPeer(cb);

        nodes_[a]->wiring[pa] = {b, pb};
        nodes_[b]->wiring[pb] = {a, pa};
        nodes_[a]->neighbours.push_back(b);
        nodes_[b]->neighbours.push_back(a);

        nodes_[a]->speaker->startPeer(pa, 0);
        nodes_[b]->speaker->startPeer(pb, 0);
        nodes_[a]->speaker->tcpEstablished(pa, 0);
        nodes_[b]->speaker->tcpEstablished(pb, 0);
        pump();
    }

    void
    pump()
    {
        // Bounded drain: convergence must not require unbounded
        // traffic. The bound is generous (path exploration in dense
        // graphs is quadratic-ish).
        size_t budget = 200000;
        while (!queue_.empty()) {
            ASSERT_GT(budget--, 0u) << "convergence livelock";
            auto seg = std::move(queue_.front());
            queue_.pop_front();
            auto [to, to_peer] = nodes_[seg.from]->wiring.at(seg.via);
            nodes_[to]->speaker->receiveSegment(to_peer,
                                                std::move(seg.wire), 0);
        }
    }

    size_t size() const { return nodes_.size(); }
    BgpSpeaker &at(size_t i) { return *nodes_[i]->speaker; }
    const std::vector<size_t> &
    neighboursOf(size_t i) const
    {
        return nodes_[i]->neighbours;
    }

    /** BFS hop distances from @p source over the topology. */
    std::vector<int>
    distancesFrom(size_t source) const
    {
        std::vector<int> dist(nodes_.size(), -1);
        std::queue<size_t> frontier;
        dist[source] = 0;
        frontier.push(source);
        while (!frontier.empty()) {
            size_t at = frontier.front();
            frontier.pop();
            for (size_t next : nodes_[at]->neighbours) {
                if (dist[next] < 0) {
                    dist[next] = dist[at] + 1;
                    frontier.push(next);
                }
            }
        }
        return dist;
    }

  private:
    struct Segment
    {
        size_t from;
        PeerId via;
        net::WireSegmentPtr wire;
    };
    std::vector<std::unique_ptr<Node>> nodes_;
    std::deque<Segment> queue_;
};

PathAttributesPtr
originAttrs(size_t node)
{
    PathAttributes attrs;
    attrs.nextHop = net::Ipv4Address(10, 200, uint8_t(node), 1);
    return makeAttributes(std::move(attrs));
}

} // namespace

class ConvergenceProperty : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(ConvergenceProperty, ShortestPathsEverywhere)
{
    workload::Rng rng(GetParam());
    Internet net;

    size_t n = 4 + rng.below(4); // 4..7 ASes
    for (size_t i = 0; i < n; ++i)
        net.addSpeaker();

    // Random connected topology: spanning tree + extra edges.
    std::vector<std::pair<size_t, size_t>> edges;
    for (size_t i = 1; i < n; ++i)
        edges.emplace_back(i, rng.below(i));
    size_t extra = rng.below(n);
    for (size_t e = 0; e < extra; ++e) {
        size_t a = rng.below(n);
        size_t b = rng.below(n);
        if (a == b)
            continue;
        bool dup = false;
        for (auto [x, y] : edges) {
            dup = dup || (x == a && y == b) || (x == b && y == a);
        }
        if (!dup)
            edges.emplace_back(a, b);
    }
    for (auto [a, b] : edges)
        net.connect(a, b);

    // Every AS originates one unique prefix.
    for (size_t i = 0; i < n; ++i) {
        net.at(i).originate(
            net::Prefix(net::Ipv4Address(20, uint8_t(i), 0, 0), 16),
            originAttrs(i), 0);
    }
    net.pump();

    // Oracle check: every speaker holds every prefix with an AS path
    // exactly as long as the BFS distance to the originator.
    for (size_t origin = 0; origin < n; ++origin) {
        auto dist = net.distancesFrom(origin);
        net::Prefix prefix(net::Ipv4Address(20, uint8_t(origin), 0, 0),
                           16);
        for (size_t node = 0; node < n; ++node) {
            const auto *entry = net.at(node).locRib().find(prefix);
            ASSERT_NE(entry, nullptr)
                << "node " << node << " missing prefix of " << origin
                << " (seed " << GetParam() << ")";
            EXPECT_EQ(entry->best.attributes->asPath.pathLength(),
                      dist[node])
                << "node " << node << " -> origin " << origin
                << " (seed " << GetParam() << ")";
        }
    }

    // Kill one random non-cut link and re-verify against the new
    // graph (convergence after failure).
    if (!edges.empty()) {
        // Removing an extra (non-tree) edge keeps the graph
        // connected; only try if one exists.
        if (edges.size() > n - 1) {
            auto [a, b] = edges.back();
            // Find the peer ids of the last-added link: it was added
            // last, so it has the highest peer ids on both ends.
            net.at(a).tcpClosed(
                PeerId(net.neighboursOf(a).size() - 1), 0);
            net.at(b).tcpClosed(
                PeerId(net.neighboursOf(b).size() - 1), 0);
            net.pump();

            // Rebuild adjacency without that edge for the oracle.
            Internet oracle_only;
            (void)oracle_only;
            // Verify reachability still holds for every prefix.
            for (size_t origin = 0; origin < n; ++origin) {
                net::Prefix prefix(
                    net::Ipv4Address(20, uint8_t(origin), 0, 0), 16);
                for (size_t node = 0; node < n; ++node) {
                    EXPECT_NE(net.at(node).locRib().find(prefix),
                              nullptr)
                        << "lost reachability after link failure "
                        << "(seed " << GetParam() << ")";
                }
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConvergenceProperty,
                         ::testing::Range(uint64_t(1), uint64_t(13)));
