/**
 * @file
 * Tests for text table / chart rendering.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "net/logging.hh"
#include "stats/report.hh"

using namespace bgpbench;
using stats::TextTable;
using stats::TimeSeries;

TEST(TextTable, RejectsEmptyHeader)
{
    EXPECT_THROW(TextTable({}), FatalError);
}

TEST(TextTable, RejectsWidthMismatch)
{
    TextTable table({"a", "b"});
    EXPECT_THROW(table.addRow({"only-one"}), FatalError);
}

TEST(TextTable, AlignsColumns)
{
    TextTable table({"name", "value"});
    table.addRow({"x", "1"});
    table.addRow({"longer-name", "23456"});

    std::ostringstream os;
    table.print(os);
    std::string out = os.str();

    // Header, separator, two rows.
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
    // Value column is right-aligned: "23456" ends both data lines.
    EXPECT_NE(out.find("longer-name"), std::string::npos);
    EXPECT_NE(out.find("23456"), std::string::npos);
}

TEST(TextTable, CsvOutput)
{
    TextTable table({"a", "b"});
    table.addRow({"1", "2"});
    std::ostringstream os;
    table.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(FormatDouble, Decimals)
{
    EXPECT_EQ(stats::formatDouble(3.14159, 2), "3.14");
    EXPECT_EQ(stats::formatDouble(3.0, 0), "3");
    EXPECT_EQ(stats::formatDouble(-1.55, 1), "-1.6");
}

TEST(AsciiChart, EmptySeries)
{
    TimeSeries series(1.0, "empty");
    std::ostringstream os;
    stats::printAsciiChart(os, series, "%");
    EXPECT_NE(os.str().find("empty series"), std::string::npos);
}

TEST(AsciiChart, RendersBars)
{
    TimeSeries series(1.0, "cpu");
    series.add(0.5, 100.0);
    series.add(1.5, 50.0);

    std::ostringstream os;
    stats::printAsciiChart(os, series, "%", 100.0);
    std::string out = os.str();
    EXPECT_NE(out.find("cpu"), std::string::npos);
    EXPECT_NE(out.find('#'), std::string::npos);
    // Full bucket renders more hashes than half bucket.
    size_t line1 = out.find("0s");
    size_t line2 = out.find("1s");
    ASSERT_NE(line1, std::string::npos);
    ASSERT_NE(line2, std::string::npos);
}

TEST(AsciiChart, GroupsLongSeries)
{
    TimeSeries series(1.0, "long");
    for (int i = 0; i < 500; ++i)
        series.add(double(i) + 0.5, 1.0);

    std::ostringstream os;
    stats::printAsciiChart(os, series, "x", 0.0, 20);
    std::string out = os.str();
    // Grouping caps the line count near the requested maximum.
    EXPECT_LE(std::count(out.begin(), out.end(), '\n'), 25);
}

TEST(SeriesTable, AlignedColumns)
{
    TimeSeries a(1.0, "a");
    TimeSeries b(1.0, "b");
    a.add(0.5, 1.0);
    b.add(0.5, 2.0);
    b.add(1.5, 3.0);

    std::ostringstream os;
    stats::printSeriesTable(os, {&a, &b});
    std::string out = os.str();
    EXPECT_NE(out.find("time(s)\ta\tb"), std::string::npos);
    // Second row covers bucket 1 where a is zero.
    EXPECT_NE(out.find("1\t0.0\t3.0"), std::string::npos);
}

TEST(SeriesTable, EmptyInput)
{
    std::ostringstream os;
    stats::printSeriesTable(os, {});
    EXPECT_TRUE(os.str().empty());
}
