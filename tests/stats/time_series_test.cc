/**
 * @file
 * Tests for the bucketed time series.
 */

#include <gtest/gtest.h>

#include "net/logging.hh"
#include "stats/time_series.hh"

using namespace bgpbench;
using stats::TimeSeries;

TEST(TimeSeries, StartsEmpty)
{
    TimeSeries series(1.0, "s");
    EXPECT_EQ(series.bucketCount(), 0u);
    EXPECT_EQ(series.total(), 0.0);
    EXPECT_EQ(series.peak(), 0.0);
    EXPECT_EQ(series.bucket(5), 0.0);
    EXPECT_EQ(series.name(), "s");
}

TEST(TimeSeries, RejectsNonPositiveBucket)
{
    EXPECT_THROW(TimeSeries(0.0), FatalError);
    EXPECT_THROW(TimeSeries(-1.0), FatalError);
}

TEST(TimeSeries, AccumulatesIntoCorrectBucket)
{
    TimeSeries series(1.0);
    series.add(0.2, 5);
    series.add(0.9, 3);
    series.add(2.5, 7);

    EXPECT_EQ(series.bucketCount(), 3u);
    EXPECT_DOUBLE_EQ(series.bucket(0), 8.0);
    EXPECT_DOUBLE_EQ(series.bucket(1), 0.0);
    EXPECT_DOUBLE_EQ(series.bucket(2), 7.0);
    EXPECT_DOUBLE_EQ(series.total(), 15.0);
    EXPECT_DOUBLE_EQ(series.peak(), 8.0);
}

TEST(TimeSeries, BoundaryLandsInUpperBucket)
{
    TimeSeries series(1.0);
    series.add(1.0, 2);
    EXPECT_DOUBLE_EQ(series.bucket(0), 0.0);
    EXPECT_DOUBLE_EQ(series.bucket(1), 2.0);
}

TEST(TimeSeries, SubSecondBuckets)
{
    TimeSeries series(0.1);
    series.add(0.05, 1);
    series.add(0.15, 1);
    series.add(0.19, 1);
    EXPECT_DOUBLE_EQ(series.bucket(0), 1.0);
    EXPECT_DOUBLE_EQ(series.bucket(1), 2.0);
}

TEST(TimeSeries, RateDividesByWidth)
{
    TimeSeries series(2.0);
    series.add(1.0, 10.0);
    EXPECT_DOUBLE_EQ(series.rate(0), 5.0);
}

TEST(TimeSeries, NegativeTimesClampToZero)
{
    TimeSeries series(1.0);
    series.add(-5.0, 3.0);
    EXPECT_DOUBLE_EQ(series.bucket(0), 3.0);
}
