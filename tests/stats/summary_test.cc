/**
 * @file
 * Tests for summary statistics.
 */

#include <gtest/gtest.h>

#include "stats/summary.hh"

using namespace bgpbench;
using stats::percentile;
using stats::summarize;

TEST(Summary, EmptyInputYieldsZeros)
{
    auto s = summarize({});
    EXPECT_EQ(s.count, 0u);
    EXPECT_EQ(s.mean, 0.0);
    EXPECT_EQ(s.max, 0.0);
}

TEST(Summary, SingleSample)
{
    auto s = summarize({42.0});
    EXPECT_EQ(s.count, 1u);
    EXPECT_DOUBLE_EQ(s.mean, 42.0);
    EXPECT_DOUBLE_EQ(s.min, 42.0);
    EXPECT_DOUBLE_EQ(s.max, 42.0);
    EXPECT_DOUBLE_EQ(s.stddev, 0.0);
    EXPECT_DOUBLE_EQ(s.p50, 42.0);
}

TEST(Summary, KnownValues)
{
    auto s = summarize({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
    EXPECT_EQ(s.count, 8u);
    EXPECT_DOUBLE_EQ(s.mean, 5.0);
    EXPECT_DOUBLE_EQ(s.min, 2.0);
    EXPECT_DOUBLE_EQ(s.max, 9.0);
    // Sample stddev with n-1: sqrt(32/7).
    EXPECT_NEAR(s.stddev, 2.13809, 1e-4);
    EXPECT_DOUBLE_EQ(s.p50, 4.5);
}

TEST(Summary, UnsortedInputHandled)
{
    auto s = summarize({9.0, 1.0, 5.0});
    EXPECT_DOUBLE_EQ(s.min, 1.0);
    EXPECT_DOUBLE_EQ(s.max, 9.0);
    EXPECT_DOUBLE_EQ(s.p50, 5.0);
}

TEST(Percentile, Interpolates)
{
    std::vector<double> sorted = {10.0, 20.0, 30.0, 40.0};
    EXPECT_DOUBLE_EQ(percentile(sorted, 0.0), 10.0);
    EXPECT_DOUBLE_EQ(percentile(sorted, 1.0), 40.0);
    EXPECT_DOUBLE_EQ(percentile(sorted, 0.5), 25.0);
    EXPECT_NEAR(percentile(sorted, 1.0 / 3.0), 20.0, 1e-9);
}

TEST(Percentile, EmptyReturnsZero)
{
    EXPECT_DOUBLE_EQ(percentile({}, 0.5), 0.0);
}

TEST(Percentile, ClampsOutOfRange)
{
    std::vector<double> sorted = {1.0, 2.0};
    EXPECT_DOUBLE_EQ(percentile(sorted, -0.5), 1.0);
    EXPECT_DOUBLE_EQ(percentile(sorted, 1.5), 2.0);
}
