/**
 * @file
 * Concurrency stress test for epoch snapshot publication: one writer
 * churns routes and publishes epochs as fast as it can while reader
 * threads continuously acquire, verify, and query snapshots. Run
 * under ThreadSanitizer (cmake -DCMAKE_CXX_FLAGS=-fsanitize=thread)
 * this exercises the only cross-thread edge in the serve design —
 * the atomic shared_ptr swap in SnapshotPublisher.
 *
 * The assertions encode the published-state invariants:
 *  - every snapshot a reader acquires passes verifyChecksum(), i.e.
 *    no torn or half-built table is ever reachable through the
 *    pointer;
 *  - epochs observed by one reader never go backwards;
 *  - routes found by scan agree with bestPath on the same snapshot
 *    (internal consistency of the frozen index);
 *  - a snapshot held across many later publications stays valid and
 *    unchanged (RCU grace by refcount).
 */

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "bgp/rib.hh"
#include "serve/publisher.hh"

using namespace bgpbench;
using namespace bgpbench::serve;

namespace
{

bgp::PathAttributesPtr
attrs(uint16_t origin_as)
{
    bgp::PathAttributes a;
    a.asPath = bgp::AsPath::sequence({origin_as});
    a.nextHop = net::Ipv4Address(10, 0, 0, 1);
    return bgp::makeAttributes(std::move(a));
}

net::Prefix
routePrefix(size_t i)
{
    return net::Prefix(
        net::Ipv4Address(10, uint8_t(i / 256), uint8_t(i % 256), 0), 24);
}

} // namespace

TEST(SnapshotStress, ReadersNeverSeeTornState)
{
    constexpr size_t kRoutes = 128;
    constexpr uint64_t kEpochs = 300;
    constexpr int kReaders = 4;

    SnapshotPublisher publisher;
    std::atomic<bool> done{false};
    std::atomic<uint64_t> failures{0};

    std::vector<std::thread> readers;
    readers.reserve(kReaders);
    for (int r = 0; r < kReaders; ++r) {
        readers.emplace_back([&publisher, &done, &failures] {
            uint64_t last_epoch = 0;
            RibSnapshotPtr pinned; // held across later publications
            uint64_t pinned_checksum = 0;
            while (!done.load(std::memory_order_acquire)) {
                RibSnapshotPtr snapshot = publisher.current();
                if (!snapshot->verifyChecksum())
                    failures.fetch_add(1);
                if (snapshot->epoch() < last_epoch)
                    failures.fetch_add(1);
                last_epoch = snapshot->epoch();

                // scan and bestPath must agree on one frozen table.
                snapshot->scan(
                    net::Prefix(net::Ipv4Address(10, 0, 0, 0), 8), 16,
                    [&snapshot, &failures](const SnapshotRoute &route) {
                        const SnapshotRoute *best =
                            snapshot->bestPath(route.prefix);
                        if (best == nullptr ||
                            best->peer != route.peer)
                            failures.fetch_add(1);
                    });

                // Pin an early snapshot and re-verify it forever
                // after: later publications must not disturb it.
                if (!pinned && snapshot->epoch() > 0) {
                    pinned = snapshot;
                    pinned_checksum = snapshot->checksum();
                }
                if (pinned &&
                    (pinned->checksum() != pinned_checksum ||
                     !pinned->verifyChecksum()))
                    failures.fetch_add(1);
            }
        });
    }

    // Writer: churn the table (install, replace, withdraw) and
    // publish an epoch per step, like a decision process flushing.
    bgp::LocRib rib;
    for (uint64_t epoch = 1; epoch <= kEpochs; ++epoch) {
        size_t slot = size_t(epoch) % kRoutes;
        if (epoch % 3 == 0) {
            rib.remove(routePrefix(slot));
        } else {
            bgp::Candidate candidate;
            candidate.attributes = attrs(uint16_t(epoch % 13 + 1));
            candidate.peer = bgp::PeerId(epoch % 5);
            rib.select(routePrefix(slot), candidate);
        }
        publisher.onRibPublish(rib, epoch, epoch * 1000);
    }
    done.store(true, std::memory_order_release);
    for (std::thread &reader : readers)
        reader.join();

    EXPECT_EQ(failures.load(), 0u);
    EXPECT_EQ(publisher.published(), kEpochs);
    EXPECT_EQ(publisher.current()->epoch(), kEpochs);
    EXPECT_TRUE(publisher.current()->verifyChecksum());
}
