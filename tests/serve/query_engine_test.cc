/**
 * @file
 * Tests for the multi-threaded read-side query engine.
 */

#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "bgp/rib.hh"
#include "serve/publisher.hh"
#include "serve/query_engine.hh"

using namespace bgpbench;
using namespace bgpbench::serve;

namespace
{

bgp::PathAttributesPtr
attrs(uint16_t origin_as)
{
    bgp::PathAttributes a;
    a.asPath = bgp::AsPath::sequence({origin_as});
    a.nextHop = net::Ipv4Address(10, 0, 0, 1);
    return bgp::makeAttributes(std::move(a));
}

/** A publisher loaded with @p count /24 routes at epoch 1. */
SnapshotPublisher &
loadedPublisher(SnapshotPublisher &publisher, size_t count)
{
    bgp::LocRib rib;
    for (size_t i = 0; i < count; ++i) {
        bgp::Candidate candidate;
        candidate.attributes = attrs(uint16_t(100 + i % 7));
        candidate.peer = bgp::PeerId(i % 4);
        rib.select(net::Prefix(net::Ipv4Address(10, uint8_t(i / 256),
                                                uint8_t(i % 256), 0),
                               24),
                   candidate);
    }
    publisher.onRibPublish(rib, 1, 0);
    return publisher;
}

std::vector<net::Prefix>
routeTargets(size_t count)
{
    std::vector<net::Prefix> out;
    for (size_t i = 0; i < count; ++i)
        out.push_back(net::Prefix(
            net::Ipv4Address(10, uint8_t(i / 256), uint8_t(i % 256), 0),
            24));
    return out;
}

} // namespace

TEST(QueryEngine, RunFixedExecutesExactQuota)
{
    SnapshotPublisher publisher;
    loadedPublisher(publisher, 32);

    QueryEngineConfig config;
    config.readers = 3;
    config.queriesPerReader = 5000;
    QueryEngine engine(publisher, routeTargets(32), config);
    ServeReport report = engine.runFixed();

    EXPECT_EQ(report.queries, 3u * 5000u);
    uint64_t per_class = 0;
    for (const QueryClassStats &cls : report.classes) {
        per_class += cls.queries;
        EXPECT_LE(cls.hits, cls.queries);
        // Latency summaries exist for every exercised class.
        if (cls.queries > 0) {
            EXPECT_GT(cls.latencyNs.max, 0u);
        }
    }
    EXPECT_EQ(per_class, report.queries);
    EXPECT_GT(report.queriesPerSec, 0.0);
    EXPECT_GT(report.wallNs, 0u);
    // All queries ran against the loaded epoch.
    EXPECT_EQ(report.firstEpoch, 1u);
    EXPECT_EQ(report.lastEpoch, 1u);
}

TEST(QueryEngine, QueriesAgainstLoadedTableHit)
{
    SnapshotPublisher publisher;
    loadedPublisher(publisher, 64);

    QueryEngineConfig config;
    config.readers = 1;
    config.queriesPerReader = 4000;
    QueryEngine engine(publisher, routeTargets(64), config);
    ServeReport report = engine.runFixed();

    // Targets name real routes, so every class should be answering
    // from the table.
    for (const QueryClassStats &cls : report.classes) {
        if (cls.queries > 0) {
            EXPECT_EQ(cls.hits, cls.queries)
                << workload::queryKindName(cls.kind);
        }
    }
    EXPECT_GT(report.encodedBytes, 0u);
    EXPECT_GT(report.routesScanned, 0u);
}

TEST(QueryEngine, EmptyTableMisses)
{
    SnapshotPublisher publisher; // epoch 0, empty
    QueryEngineConfig config;
    config.readers = 1;
    config.queriesPerReader = 1000;
    QueryEngine engine(publisher, routeTargets(8), config);
    ServeReport report = engine.runFixed();

    EXPECT_EQ(report.queries, 1000u);
    for (const QueryClassStats &cls : report.classes)
        EXPECT_EQ(cls.hits, 0u);
    EXPECT_EQ(report.firstEpoch, 0u);
    EXPECT_EQ(report.routesScanned, 0u);
}

TEST(QueryEngine, EncodingCanBeDisabled)
{
    SnapshotPublisher publisher;
    loadedPublisher(publisher, 16);
    QueryEngineConfig config;
    config.readers = 1;
    config.queriesPerReader = 500;
    config.encodeResponses = false;
    QueryEngine engine(publisher, routeTargets(16), config);
    ServeReport report = engine.runFixed();
    EXPECT_EQ(report.encodedBytes, 0u);
    EXPECT_EQ(report.queries, 500u);
}

TEST(QueryEngine, PerClassCountsAreSeedDeterministic)
{
    SnapshotPublisher publisher;
    loadedPublisher(publisher, 32);

    QueryEngineConfig config;
    config.readers = 2;
    config.queriesPerReader = 3000;
    config.seed = 99;

    QueryEngine a(publisher, routeTargets(32), config);
    ServeReport ra = a.runFixed();
    QueryEngine b(publisher, routeTargets(32), config);
    ServeReport rb = b.runFixed();

    ASSERT_EQ(ra.classes.size(), rb.classes.size());
    for (size_t i = 0; i < ra.classes.size(); ++i) {
        // The query sequence is deterministic per seed, so the class
        // and hit counts match run to run even though timing differs.
        EXPECT_EQ(ra.classes[i].queries, rb.classes[i].queries);
        EXPECT_EQ(ra.classes[i].hits, rb.classes[i].hits);
    }
    EXPECT_EQ(ra.routesScanned, rb.routesScanned);
    EXPECT_EQ(ra.encodedBytes, rb.encodedBytes);
}

TEST(QueryEngine, ReportIsIdempotentAndAbsorbable)
{
    SnapshotPublisher publisher;
    loadedPublisher(publisher, 16);
    QueryEngineConfig config;
    config.readers = 2;
    config.queriesPerReader = 1000;
    QueryEngine engine(publisher, routeTargets(16), config);
    ServeReport first = engine.runFixed();
    ServeReport second = engine.report();
    EXPECT_EQ(first.queries, second.queries);
    ASSERT_EQ(first.classes.size(), second.classes.size());
    for (size_t i = 0; i < first.classes.size(); ++i) {
        EXPECT_EQ(first.classes[i].queries, second.classes[i].queries);
        EXPECT_EQ(first.classes[i].latencyNs.p99,
                  second.classes[i].latencyNs.p99);
    }

    // Absorbing drains the per-reader registries into the target: the
    // merged histogram count equals the total query count.
    obs::MetricRegistry target;
    engine.absorbInto(target);
    obs::MetricRegistry::Snapshot snap = target.snapshot();
    uint64_t recorded = 0;
    for (const auto &row : snap.histograms)
        if (row.name.rfind("serve.latency.", 0) == 0)
            recorded += row.count;
    EXPECT_EQ(recorded, first.queries);
}

TEST(QueryEngine, PacedModeStopsCleanly)
{
    SnapshotPublisher publisher;
    loadedPublisher(publisher, 16);
    QueryEngineConfig config;
    config.readers = 2;
    config.pacedBatch = 16;
    config.pacedIntervalNs = 100000; // 0.1 ms: plenty of bursts
    QueryEngine engine(publisher, routeTargets(16), config);

    engine.startPaced();
    // Each reader executes its first burst as soon as its thread is
    // scheduled; give the scheduler ample room before stopping.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    engine.stop();
    ServeReport report = engine.report();
    EXPECT_GE(report.queries, 2u * 16u);
    EXPECT_EQ(report.firstEpoch, 1u);

    // stop() is idempotent.
    engine.stop();
}
