/**
 * @file
 * Determinism suite for the serve runner: attaching a snapshot
 * publisher and live reader threads to a convergence run must not
 * change the run — the convergence report stays byte-identical to the
 * plain announce scenario at every parallel job count. Readers live
 * in host time; the simulation lives in virtual time; any leak of one
 * into the other shows up here as a byte diff.
 */

#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "serve/serve_runner.hh"
#include "topo/scenarios.hh"
#include "topo/topology.hh"

using namespace bgpbench;

namespace
{

const std::vector<size_t> kJobCounts = {1, 2, 4, 8};

/** All three renderings of a report, concatenated. */
std::string
allRenderings(const topo::ConvergenceReport &report)
{
    std::ostringstream os;
    os << report.toJson() << '\n';
    report.printCsv(os, true);
    report.printText(os);
    return os.str();
}

serve::ServeRunConfig
serveConfig(size_t jobs)
{
    serve::ServeRunConfig config;
    config.scenario.prefixesPerNode = 2;
    config.scenario.simConfig.jobs = jobs;
    config.engine.readers = 2;
    config.engine.pacedBatch = 16;
    config.engine.pacedIntervalNs = 200000;
    config.throughputPhase = false;
    return config;
}

} // namespace

TEST(ServeDeterminism, ReadersDoNotPerturbConvergence)
{
    topo::ScenarioOptions plain;
    plain.prefixesPerNode = 2;
    std::string baseline = allRenderings(topo::runAnnounceScenario(
        topo::Topology::ring(10), "ring", plain));
    ASSERT_FALSE(baseline.empty());

    for (size_t jobs : kJobCounts) {
        SCOPED_TRACE("jobs=" + std::to_string(jobs));
        serve::ServeRunResult result = serve::runServeScenario(
            topo::Topology::ring(10), "ring", serveConfig(jobs));
        EXPECT_EQ(allRenderings(result.convergence), baseline);
        EXPECT_TRUE(result.convergence.converged);
        // The publisher really ran: one epoch per decision flush.
        EXPECT_GT(result.snapshotsPublished, 0u);
        EXPECT_EQ(result.tableSize, 10u * 2u);
    }
}

TEST(ServeDeterminism, DetachedReadersMatchAttached)
{
    // Publisher-only (no reader threads at all) must also match a
    // run with readers attached, epoch for epoch.
    serve::ServeRunConfig with_readers = serveConfig(2);
    serve::ServeRunResult attached = serve::runServeScenario(
        topo::Topology::ring(10), "ring", with_readers);

    serve::ServeRunConfig without = serveConfig(2);
    without.concurrentReaders = false;
    serve::ServeRunResult detached = serve::runServeScenario(
        topo::Topology::ring(10), "ring", without);

    EXPECT_EQ(allRenderings(attached.convergence),
              allRenderings(detached.convergence));
    EXPECT_EQ(attached.snapshotsPublished, detached.snapshotsPublished);
    EXPECT_EQ(attached.finalEpoch, detached.finalEpoch);
    EXPECT_EQ(attached.tableSize, detached.tableSize);
}

TEST(ServeDeterminism, SnapshotGranularityDoesNotChangeOutcome)
{
    // Publishing every N decisions instead of per flush changes how
    // many epochs exist, not what the final table or report says.
    serve::ServeRunConfig per_flush = serveConfig(1);
    per_flush.concurrentReaders = false;
    serve::ServeRunResult flush_run = serve::runServeScenario(
        topo::Topology::ring(10), "ring", per_flush);

    serve::ServeRunConfig every_n = serveConfig(1);
    every_n.concurrentReaders = false;
    every_n.snapshotEvery = 8;
    serve::ServeRunResult n_run = serve::runServeScenario(
        topo::Topology::ring(10), "ring", every_n);

    EXPECT_EQ(allRenderings(flush_run.convergence),
              allRenderings(n_run.convergence));
    EXPECT_EQ(flush_run.tableSize, n_run.tableSize);
    EXPECT_NE(flush_run.snapshotsPublished, n_run.snapshotsPublished);
}
