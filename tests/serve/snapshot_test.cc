/**
 * @file
 * Tests for immutable epoch-stamped RIB snapshots.
 */

#include <vector>

#include <gtest/gtest.h>

#include "bgp/rib.hh"
#include "serve/snapshot.hh"

using namespace bgpbench;
using namespace bgpbench::serve;

namespace
{

bgp::PathAttributesPtr
attrs(uint16_t origin_as)
{
    bgp::PathAttributes a;
    a.asPath = bgp::AsPath::sequence({origin_as});
    a.nextHop = net::Ipv4Address(10, 0, 0, 1);
    return bgp::makeAttributes(std::move(a));
}

net::Prefix
pfx(const std::string &text)
{
    return net::Prefix::fromString(text);
}

void
install(bgp::LocRib &rib, const std::string &prefix, bgp::PeerId peer,
        uint16_t origin_as, bool local = false)
{
    bgp::Candidate candidate;
    candidate.attributes = attrs(origin_as);
    candidate.peer = peer;
    candidate.locallyOriginated = local;
    rib.select(pfx(prefix), candidate);
}

} // namespace

TEST(RibSnapshot, EmptySnapshotAnswersEverything)
{
    RibSnapshot empty;
    EXPECT_TRUE(empty.empty());
    EXPECT_EQ(empty.epoch(), 0u);
    EXPECT_EQ(empty.bestPath(pfx("10.0.0.0/8")), nullptr);
    EXPECT_EQ(empty.lookup(net::Ipv4Address(10, 0, 0, 1)), nullptr);
    EXPECT_EQ(
        empty.scan(pfx("0.0.0.0/0"), 0, [](const SnapshotRoute &) {}),
        0u);
    EXPECT_TRUE(empty.peerSummaries().empty());
    EXPECT_TRUE(empty.verifyChecksum());
}

TEST(RibSnapshot, BuildFreezesRoutesInPrefixOrder)
{
    bgp::LocRib rib;
    install(rib, "10.2.0.0/16", 2, 200);
    install(rib, "10.1.0.0/16", 1, 100);
    install(rib, "10.3.0.0/24", 1, 100);

    RibSnapshotPtr snapshot = RibSnapshot::build(rib, 7, 12345);
    EXPECT_EQ(snapshot->epoch(), 7u);
    EXPECT_EQ(snapshot->publishedAtNs(), 12345u);
    ASSERT_EQ(snapshot->size(), 3u);

    // Sorted by (address, length) regardless of hash-map order.
    EXPECT_EQ(snapshot->routes()[0].prefix, pfx("10.1.0.0/16"));
    EXPECT_EQ(snapshot->routes()[1].prefix, pfx("10.2.0.0/16"));
    EXPECT_EQ(snapshot->routes()[2].prefix, pfx("10.3.0.0/24"));

    // Attributes are shared, not copied.
    const SnapshotRoute *route = snapshot->bestPath(pfx("10.1.0.0/16"));
    ASSERT_NE(route, nullptr);
    EXPECT_EQ(route->peer, bgp::PeerId(1));
    ASSERT_TRUE(route->attributes);
    EXPECT_EQ(route->attributes, rib.find(pfx("10.1.0.0/16"))
                                     ->best.attributes);
}

TEST(RibSnapshot, LookupFindsLongestMatch)
{
    bgp::LocRib rib;
    install(rib, "0.0.0.0/0", 9, 900);
    install(rib, "10.0.0.0/8", 1, 100);
    install(rib, "10.1.0.0/16", 2, 200);

    RibSnapshotPtr snapshot = RibSnapshot::build(rib, 1, 0);
    EXPECT_EQ(snapshot->lookup(net::Ipv4Address(10, 1, 2, 3))->prefix,
              pfx("10.1.0.0/16"));
    EXPECT_EQ(snapshot->lookup(net::Ipv4Address(10, 9, 0, 1))->prefix,
              pfx("10.0.0.0/8"));
    EXPECT_EQ(snapshot->lookup(net::Ipv4Address(192, 168, 0, 1))->prefix,
              pfx("0.0.0.0/0"));
}

TEST(RibSnapshot, ScanVisitsOnlyCoveredRoutes)
{
    bgp::LocRib rib;
    install(rib, "0.0.0.0/0", 9, 900);
    install(rib, "10.0.0.0/8", 1, 100);
    install(rib, "10.0.0.0/16", 1, 100);
    install(rib, "10.1.0.0/16", 2, 200);
    install(rib, "10.1.5.0/24", 2, 200);
    install(rib, "11.0.0.0/8", 3, 300);

    RibSnapshotPtr snapshot = RibSnapshot::build(rib, 1, 0);

    std::vector<net::Prefix> seen;
    size_t visited = snapshot->scan(
        pfx("10.0.0.0/8"), 0,
        [&seen](const SnapshotRoute &route) {
            seen.push_back(route.prefix);
        });
    EXPECT_EQ(visited, 4u);
    ASSERT_EQ(seen.size(), 4u);
    // Ascending order; 0.0.0.0/0 and 11/8 excluded.
    EXPECT_EQ(seen[0], pfx("10.0.0.0/8"));
    EXPECT_EQ(seen[1], pfx("10.0.0.0/16"));
    EXPECT_EQ(seen[2], pfx("10.1.0.0/16"));
    EXPECT_EQ(seen[3], pfx("10.1.5.0/24"));

    // A range sharing its base address with a shorter stored prefix
    // must not return the shorter one.
    seen.clear();
    snapshot->scan(pfx("10.1.0.0/16"), 0,
                   [&seen](const SnapshotRoute &route) {
                       seen.push_back(route.prefix);
                   });
    ASSERT_EQ(seen.size(), 2u);
    EXPECT_EQ(seen[0], pfx("10.1.0.0/16"));
    EXPECT_EQ(seen[1], pfx("10.1.5.0/24"));

    // The limit truncates mid-range.
    seen.clear();
    visited = snapshot->scan(pfx("10.0.0.0/8"), 2,
                             [&seen](const SnapshotRoute &route) {
                                 seen.push_back(route.prefix);
                             });
    EXPECT_EQ(visited, 2u);
    EXPECT_EQ(seen.size(), 2u);
}

TEST(RibSnapshot, ScanAtAddressSpaceEdge)
{
    bgp::LocRib rib;
    install(rib, "255.255.255.0/24", 1, 100);
    install(rib, "255.0.0.0/8", 1, 100);

    RibSnapshotPtr snapshot = RibSnapshot::build(rib, 1, 0);
    // The range's broadcast address is 255.255.255.255; the span test
    // must not overflow past it.
    size_t visited = snapshot->scan(pfx("255.0.0.0/8"), 0,
                                    [](const SnapshotRoute &) {});
    EXPECT_EQ(visited, 2u);
}

TEST(RibSnapshot, PeerSummariesCountBestPaths)
{
    bgp::LocRib rib;
    install(rib, "10.1.0.0/16", 5, 100);
    install(rib, "10.2.0.0/16", 5, 100);
    install(rib, "10.3.0.0/16", 2, 200);
    install(rib, "10.4.0.0/16", 0, 0, true); // locally originated

    RibSnapshotPtr snapshot = RibSnapshot::build(rib, 1, 0);
    const auto &peers = snapshot->peerSummaries();
    ASSERT_EQ(peers.size(), 3u);
    // Sorted by peer id.
    EXPECT_EQ(peers[0].peer, bgp::PeerId(0));
    EXPECT_EQ(peers[0].bestPaths, 1u);
    EXPECT_EQ(peers[1].peer, bgp::PeerId(2));
    EXPECT_EQ(peers[1].bestPaths, 1u);
    EXPECT_EQ(peers[2].peer, bgp::PeerId(5));
    EXPECT_EQ(peers[2].bestPaths, 2u);

    const SnapshotRoute *local = snapshot->bestPath(pfx("10.4.0.0/16"));
    ASSERT_NE(local, nullptr);
    EXPECT_TRUE(local->locallyOriginated);
}

TEST(RibSnapshot, ChecksumCoversContentAndEpoch)
{
    bgp::LocRib rib;
    install(rib, "10.1.0.0/16", 1, 100);

    RibSnapshotPtr a = RibSnapshot::build(rib, 1, 0);
    RibSnapshotPtr same = RibSnapshot::build(rib, 1, 99);
    EXPECT_TRUE(a->verifyChecksum());
    // publishedAtNs is metadata, not content.
    EXPECT_EQ(a->checksum(), same->checksum());

    RibSnapshotPtr other_epoch = RibSnapshot::build(rib, 2, 0);
    EXPECT_NE(a->checksum(), other_epoch->checksum());

    install(rib, "10.2.0.0/16", 2, 200);
    RibSnapshotPtr grown = RibSnapshot::build(rib, 1, 0);
    EXPECT_NE(a->checksum(), grown->checksum());
    EXPECT_TRUE(grown->verifyChecksum());
}

TEST(RibSnapshot, OldEpochSurvivesNewerBuilds)
{
    bgp::LocRib rib;
    install(rib, "10.1.0.0/16", 1, 100);
    RibSnapshotPtr old_snapshot = RibSnapshot::build(rib, 1, 0);

    // Mutate the writer's table and build newer epochs; the old
    // snapshot must stay intact and verifiable (RCU grace by
    // refcount).
    rib.remove(pfx("10.1.0.0/16"));
    install(rib, "10.9.0.0/16", 9, 900);
    RibSnapshotPtr newer = RibSnapshot::build(rib, 2, 0);

    EXPECT_EQ(old_snapshot->size(), 1u);
    EXPECT_NE(old_snapshot->bestPath(pfx("10.1.0.0/16")), nullptr);
    EXPECT_TRUE(old_snapshot->verifyChecksum());
    EXPECT_EQ(newer->bestPath(pfx("10.1.0.0/16")), nullptr);
}
