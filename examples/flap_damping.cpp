/**
 * @file
 * Route flap damping (RFC 2439) in action, and table snapshots.
 *
 * The paper motivates BGP benchmarking with instability: unstable
 * routes multiply the update-processing load it measures. This
 * example subjects a simulated Pentium III router to a flap storm
 * with damping off and on, compares the processing work, and writes
 * an MRT-style snapshot of the converged table.
 */

#include <iostream>

#include "bgp/table_io.hh"
#include "core/test_peer.hh"
#include "router/router_system.hh"
#include "stats/report.hh"
#include "workload/churn.hh"

using namespace bgpbench;

namespace
{

struct StormResult
{
    double durationSec = 0.0;
    uint64_t fibWrites = 0;
    uint64_t suppressed = 0;
    size_t tableSize = 0;
    std::vector<uint8_t> snapshot;
};

StormResult
runStorm(bool damping)
{
    sim::Simulator sim;
    router::RouterConfig rc;
    bgp::PeerConfig p1;
    p1.id = 0;
    p1.asn = 65001;
    p1.address = net::Ipv4Address(10, 0, 1, 2);
    rc.peers = {p1};
    rc.damping.enabled = damping;

    router::RouterSystem router(&sim, router::pentium3Profile(), rc);
    core::TestPeer peer(&sim, core::TestPeerConfig{}, &router, 0);
    router.start();
    peer.connect();

    auto wait = [&](auto cond) {
        while (!cond() && sim::toSeconds(sim.now()) < 7200.0)
            sim.runUntil(sim.now() + sim::nsFromMs(1));
    };
    wait([&]() {
        return peer.established() && router.controlDrained();
    });

    // Install a 800-prefix table, then hammer 10% of it with a
    // 3000-transaction flap storm.
    workload::RouteSetConfig rsc;
    rsc.count = 800;
    auto routes = workload::generateRouteSet(rsc);
    workload::StreamConfig sc;
    sc.speakerAs = 65001;
    sc.nextHop = net::Ipv4Address(10, 0, 1, 2);
    sc.prefixesPerPacket = 25;

    peer.enqueueStream(
        workload::buildAnnouncementStream(routes, sc));
    wait([&]() {
        return peer.sendComplete() && router.controlDrained();
    });

    uint64_t fib_before = router.controlPlane().fibChangesApplied;
    workload::ChurnConfig cc;
    cc.stream = sc;
    cc.events = 3000;
    cc.flappingFraction = 0.1;
    cc.withdrawFraction = 0.45;
    auto storm = buildChurnStream(routes, cc);
    size_t transactions = workload::streamTransactions(storm);

    double t0 = sim::toSeconds(sim.now());
    uint64_t processed0 =
        router.speaker().counters().transactionsProcessed();
    peer.enqueueStream(std::move(storm));
    wait([&]() {
        return peer.sendComplete() && router.controlDrained() &&
               router.speaker().counters().transactionsProcessed() >=
                   processed0 + transactions;
    });

    StormResult result;
    result.durationSec = sim::toSeconds(sim.now()) - t0;
    result.fibWrites =
        router.controlPlane().fibChangesApplied - fib_before;
    result.suppressed =
        router.speaker().counters().announcementsSuppressed;
    result.tableSize = router.speaker().locRib().size();
    result.snapshot = bgp::dumpTable(router.speaker().locRib());
    return result;
}

} // namespace

int
main()
{
    std::cout << "Flap storm on a Pentium III router: 3000 "
                 "announce/withdraw transactions over 80 unstable "
                 "prefixes.\n\n";

    auto off = runStorm(false);
    auto on = runStorm(true);

    stats::TextTable table({"damping", "storm time (s)", "FIB writes",
                            "suppressed", "final table"});
    table.addRow({"off", stats::formatDouble(off.durationSec, 1),
                  std::to_string(off.fibWrites),
                  std::to_string(off.suppressed),
                  std::to_string(off.tableSize)});
    table.addRow({"on", stats::formatDouble(on.durationSec, 1),
                  std::to_string(on.fibWrites),
                  std::to_string(on.suppressed),
                  std::to_string(on.tableSize)});
    table.print(std::cout);

    std::cout << "\nDamping suppresses the persistent flappers after "
                 "their first few cycles: the router stops churning "
                 "its FIB for them and digests the same storm in a "
                 "fraction of the time. The price is reachability — "
                 "suppressed prefixes drop out of the table until "
                 "their penalty decays ("
              << off.tableSize - on.tableSize
              << " prefixes suppressed at storm end here).\n";

    // Table snapshot: serialise, stream back into a RIB, verify.
    // loadTable pre-sizes from the dump's route-count header and
    // installs entries as they decode — no staged entry vector.
    bgp::DecodeError error;
    bgp::LocRib reloaded;
    size_t loaded = bgp::loadTable(off.snapshot, reloaded, error);
    std::cout << "\nSnapshot of the undamped table: "
              << off.snapshot.size() << " bytes, " << loaded
              << " routes streamed back ("
              << (error ? error.detail : "ok") << ").\n";
    return 0;
}
