/**
 * @file
 * A multi-router network on the topo subsystem.
 *
 * Builds the four-AS policy demonstration topology — a customer
 * dual-homed to two ISPs that both feed a backbone:
 *
 *     AS 100 (customer) --- AS 200 (isp-a) --- AS 400 (backbone)
 *                       \-- AS 300 (isp-b) --/
 *
 * The customer prefers isp-a via LOCAL_PREF; isp-b path-prepends on
 * export toward the backbone; the backbone filters martian prefixes
 * from both ISPs. Unlike the benchmark harness, everything here runs
 * at network realism: real wire-format messages, link latency and
 * serialisation, and per-router processing costs, all on the
 * deterministic simulator. The same scenario is asserted in
 * tests/topo/network_example_test.cc.
 */

#include <iostream>

#include "stats/report.hh"
#include "topo/scenarios.hh"

using namespace bgpbench;

int
main()
{
    topo::demo::FourAsNetwork net = topo::demo::fourAsPolicyTopology();
    topo::TopologySim sim(net.topology);
    const sim::SimTime limit = sim::nsFromSec(60.0);

    // Sessions come up at t = 0; run the OPEN exchanges to quiet.
    sim.runToConvergence(limit);
    std::cout << "Topology up: customer(AS100) dual-homed to "
                 "isp-a(AS200) and isp-b(AS300), both feeding "
                 "backbone(AS400).\n";

    // Originate the demo routes and converge.
    sim.tracker().markPhaseStart(sim.simulator().now());
    topo::demo::originateDemoRoutes(sim, net, sim.simulator().now());
    sim.runToConvergence(limit);
    std::cout << "Announcements converged in "
              << stats::formatDouble(
                     sim.tracker().convergenceTimeSec() * 1e3, 3)
              << " ms of simulated time.\n";

    topo::printLocRib(std::cout, sim.speaker(net.customer),
                      "customer");
    std::cout << "(both backbone prefixes via isp-a: the import "
                 "policy sets LOCAL_PREF 200 on that session; the "
                 "martian arrives from isp-b directly)\n";

    topo::printLocRib(std::cout, sim.speaker(net.backbone),
                      "backbone");
    std::cout << "(the customer prefix arrives via isp-a — isp-b's "
                 "prepending made its path longer — and isp-b's "
                 "martian is filtered on both sessions)\n";

    // Link failure: the customer's link to isp-a drops, in-flight
    // data is lost, and everything fails over to isp-b.
    std::cout << "\n*** link customer <-> isp-a fails ***\n";
    sim.tracker().markPhaseStart(sim.simulator().now());
    sim.scheduleLinkDown(net.customerIspALink, sim.simulator().now());
    sim.runToConvergence(limit);
    std::cout << "Re-converged in "
              << stats::formatDouble(
                     sim.tracker().convergenceTimeSec() * 1e3, 3)
              << " ms of simulated time.\n";

    topo::printLocRib(std::cout, sim.speaker(net.customer),
                      "customer");
    std::cout << "(everything fails over to isp-b's longer paths)\n";

    topo::printLocRib(std::cout, sim.speaker(net.backbone),
                      "backbone");
    std::cout << "(the customer prefix now carries isp-b's prepended "
                 "path)\n";
    return 0;
}
