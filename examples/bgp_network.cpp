/**
 * @file
 * Using the BGP library standalone — no simulator, no benchmark.
 *
 * Builds a four-AS topology with real wire-format message exchange
 * and routing policy:
 *
 *     AS 100 (customer) --- AS 200 (ISP A) --- AS 400 (backbone)
 *                       \-- AS 300 (ISP B) --/
 *
 * AS 100 dual-homes to two ISPs and prefers ISP A via LOCAL_PREF;
 * ISP B path-prepends on export to make itself less attractive; and
 * the backbone filters a martian prefix.
 */

#include <deque>
#include <iostream>
#include <map>
#include <memory>

#include "bgp/speaker.hh"
#include "stats/report.hh"

using namespace bgpbench;
using namespace bgpbench::bgp;

namespace
{

/**
 * Minimal in-memory "TCP": queues segments between speakers and
 * delivers them until quiet.
 */
class Network : public SpeakerEvents
{
  public:
    struct Endpoint
    {
        BgpSpeaker *speaker;
        PeerId peer;
    };

    BgpSpeaker &
    addSpeaker(const std::string &name, AsNumber asn, RouterId id,
               net::Ipv4Address address)
    {
        SpeakerConfig config;
        config.localAs = asn;
        config.routerId = id;
        config.localAddress = address;
        auto speaker = std::make_unique<BgpSpeaker>(config, this);
        names_[speaker.get()] = name;
        speakers_.push_back(std::move(speaker));
        return *speakers_.back();
    }

    /** Wire two speakers together and run the OPEN handshake. */
    void
    link(BgpSpeaker &a, PeerId pa, BgpSpeaker &b, PeerId pb,
         Policy a_import = {}, Policy a_export = {},
         Policy b_import = {}, Policy b_export = {})
    {
        PeerConfig ca;
        ca.id = pa;
        ca.asn = b.config().localAs;
        ca.importPolicy = std::move(a_import);
        ca.exportPolicy = std::move(a_export);
        a.addPeer(ca);

        PeerConfig cb;
        cb.id = pb;
        cb.asn = a.config().localAs;
        cb.importPolicy = std::move(b_import);
        cb.exportPolicy = std::move(b_export);
        b.addPeer(cb);

        wires_[{&a, pa}] = {&b, pb};
        wires_[{&b, pb}] = {&a, pa};

        sender_ = &a;
        a.startPeer(pa, 0);
        a.tcpEstablished(pa, 0);
        sender_ = &b;
        b.startPeer(pb, 0);
        b.tcpEstablished(pb, 0);
        sender_ = nullptr;
        pump();
    }

    void
    onTransmit(PeerId to, MessageType, std::vector<uint8_t> wire,
               size_t) override
    {
        queue_.push_back({{sender_, to}, std::move(wire)});
    }

    /** Deliver queued segments until the network converges. */
    void
    pump()
    {
        while (!queue_.empty()) {
            auto [from, wire] = std::move(queue_.front());
            queue_.pop_front();
            Endpoint to = wires_.at({from.speaker, from.peer});
            BgpSpeaker *prev = sender_;
            sender_ = to.speaker;
            to.speaker->receiveBytes(to.peer, wire, 0);
            sender_ = prev;
        }
    }

    /**
     * Speakers report transmissions through the shared event sink;
     * track whose call stack we are in so segments are attributed to
     * the right sender.
     */
    void
    act(BgpSpeaker &speaker, const std::function<void()> &fn)
    {
        BgpSpeaker *prev = sender_;
        sender_ = &speaker;
        fn();
        sender_ = prev;
        pump();
    }

    void
    printLocRib(const BgpSpeaker &speaker) const
    {
        std::cout << "\nLoc-RIB of " << names_.at(&speaker) << " (AS"
                  << speaker.config().localAs << "):\n";
        stats::TextTable table({"prefix", "AS path", "next hop"});
        std::vector<std::pair<net::Prefix, const LocRib::Entry *>>
            rows;
        speaker.locRib().forEach(
            [&](const net::Prefix &p, const LocRib::Entry &e) {
                rows.emplace_back(p, &e);
            });
        std::sort(rows.begin(), rows.end(),
                  [](const auto &a, const auto &b) {
                      return a.first < b.first;
                  });
        for (const auto &[prefix, entry] : rows) {
            table.addRow({prefix.toString(),
                          entry->best.attributes->asPath.toString(),
                          entry->best.attributes->nextHop.toString()});
        }
        table.print(std::cout);
    }

  private:
    std::vector<std::unique_ptr<BgpSpeaker>> speakers_;
    std::map<const BgpSpeaker *, std::string> names_;
    std::map<std::pair<BgpSpeaker *, PeerId>, Endpoint> wires_;
    std::deque<std::pair<Endpoint, std::vector<uint8_t>>> queue_;
    BgpSpeaker *sender_ = nullptr;
};

PathAttributesPtr
originAttrs(net::Ipv4Address next_hop)
{
    PathAttributes attrs;
    attrs.nextHop = next_hop;
    return makeAttributes(std::move(attrs));
}

} // namespace

int
main()
{
    Network net;

    auto &customer = net.addSpeaker("customer", 100, 0x01010101,
                                    net::Ipv4Address(192, 0, 2, 1));
    auto &isp_a = net.addSpeaker("isp-a", 200, 0x02020202,
                                 net::Ipv4Address(192, 0, 2, 2));
    auto &isp_b = net.addSpeaker("isp-b", 300, 0x03030303,
                                 net::Ipv4Address(192, 0, 2, 3));
    auto &backbone = net.addSpeaker("backbone", 400, 0x04040404,
                                    net::Ipv4Address(192, 0, 2, 4));

    // Customer prefers ISP A: import LOCAL_PREF 200 on that session.
    Policy prefer_a = makeLocalPrefForAsPolicy(200, 200);

    // ISP B advertises itself with a prepended path (traffic
    // engineering: make the backup path longer).
    PolicyRule prepend_rule;
    prepend_rule.name = "prepend-2x";
    prepend_rule.action.prependCount = 2;
    Policy prepend({prepend_rule});

    // The backbone filters a martian (test) prefix.
    Policy filter_martians = makeRejectPrefixPolicy(
        net::Prefix::fromString("192.0.2.0/24"));

    net.link(customer, 0, isp_a, 0, prefer_a);
    net.link(customer, 1, isp_b, 0);
    net.link(isp_a, 1, backbone, 0);
    net.link(isp_b, 1, backbone, 1, {}, prepend, filter_martians);

    std::cout << "Topology up: customer(AS100) dual-homed to "
                 "isp-a(AS200) and isp-b(AS300), both feeding "
                 "backbone(AS400).\n";

    // The backbone originates two real prefixes and one martian.
    net.act(backbone, [&]() {
        backbone.originate(net::Prefix::fromString("203.0.113.0/24"),
                           originAttrs(net::Ipv4Address(192, 0, 2,
                                                        4)),
                           0);
        backbone.originate(net::Prefix::fromString("198.51.100.0/24"),
                           originAttrs(net::Ipv4Address(192, 0, 2,
                                                        4)),
                           0);
    });
    // The customer originates its own prefix; it must reach the
    // backbone through both ISPs, shortest path winning there.
    net.act(customer, [&]() {
        customer.originate(net::Prefix::fromString("192.0.2.0/24"),
                           originAttrs(net::Ipv4Address(192, 0, 2,
                                                        1)),
                           0);
    });

    net.printLocRib(customer);
    std::cout << "(both backbone prefixes via isp-a: the import "
                 "policy sets LOCAL_PREF 200 on that session)\n";

    net.printLocRib(backbone);
    std::cout << "(the customer prefix is filtered by the martian "
                 "policy on the isp-b session and arrives via isp-a; "
                 "isp-b's prepending would have made that path longer "
                 "anyway)\n";

    // Link failure: the customer's session to ISP A drops.
    std::cout << "\n*** session customer <-> isp-a fails ***\n";
    net.act(customer, [&]() { customer.tcpClosed(0, 0); });
    net.act(isp_a, [&]() { isp_a.tcpClosed(0, 0); });

    net.printLocRib(customer);
    std::cout << "(everything fails over to isp-b's longer paths)\n";
    return 0;
}
