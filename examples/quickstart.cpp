/**
 * @file
 * Quickstart: run one BGP benchmark scenario on one simulated router
 * and print the paper's transactions-per-second metric.
 *
 *   $ ./examples/quickstart [system] [scenario] [prefixes]
 *   $ ./examples/quickstart Xeon 2 4000
 */

#include <cstdlib>
#include <iostream>

#include "core/benchmark_runner.hh"
#include "stats/report.hh"

using namespace bgpbench;

int
main(int argc, char **argv)
{
    std::string system = argc > 1 ? argv[1] : "Xeon";
    int scenario_number = argc > 2 ? std::atoi(argv[2]) : 1;
    size_t prefixes = argc > 3 ? size_t(std::atoll(argv[3])) : 2000;

    // 1. Pick a router platform (PentiumIII, Xeon, IXP2400, Cisco).
    auto profile = router::profileByName(system);

    // 2. Pick a benchmark scenario (Table I of the paper).
    auto scenario = core::scenarioByNumber(scenario_number);

    // 3. Configure the workload and run the three-phase benchmark.
    core::BenchmarkConfig config;
    config.prefixCount = prefixes;

    core::BenchmarkRunner runner(profile, config);
    auto result = runner.run(scenario);

    std::cout << scenario.name() << " (" << scenario.description()
              << ")\non " << profile.name << " with " << prefixes
              << " prefixes:\n\n";
    if (result.timedOut) {
        std::cout << "run exceeded the simulated-time limit\n";
        return 1;
    }

    std::cout << "  phase 1 (table injection):  "
              << stats::formatDouble(result.phase1.durationSec, 2)
              << " s\n";
    if (result.phase2) {
        std::cout << "  phase 2 (propagation):      "
                  << stats::formatDouble(result.phase2->durationSec, 2)
                  << " s\n";
    }
    if (result.phase3) {
        std::cout << "  phase 3 (measured):         "
                  << stats::formatDouble(result.phase3->durationSec, 2)
                  << " s\n";
    }
    std::cout << "\n  => " << stats::formatDouble(result.measuredTps, 1)
              << " transactions per second\n";

    std::cout << "\nRouter state after the run: "
              << runner.router().speaker().locRib().size()
              << " Loc-RIB routes, " << runner.router().fib().size()
              << " FIB entries.\n";
    return 0;
}
