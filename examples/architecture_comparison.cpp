/**
 * @file
 * Architecture comparison: the paper's headline experiment in one
 * program. Runs a start-up scenario and an incremental-replacement
 * scenario on all four router architectures and explains what the
 * differences mean (paper sections IV and V.C).
 */

#include <iostream>

#include "core/benchmark_runner.hh"
#include "stats/report.hh"

using namespace bgpbench;

int
main()
{
    const size_t prefixes = 1500;
    std::cout << "Comparing the four router architectures of Table II "
                 "(" << prefixes << " prefixes per run)\n\n";

    stats::TextTable table(
        {"System", "architecture", "S2 startup tps", "S6 no-FIB tps",
         "S8 replace tps"});

    for (const auto &profile : router::allSystemProfiles()) {
        core::BenchmarkConfig config;
        config.prefixCount = prefixes;
        core::BenchmarkRunner runner(profile, config);

        auto s2 = runner.run(core::scenarioByNumber(2));
        auto s6 = runner.run(core::scenarioByNumber(6));
        auto s8 = runner.run(core::scenarioByNumber(8));

        std::string arch;
        switch (profile.architecture) {
          case router::Architecture::UniCore:
            arch = "uni-core workstation";
            break;
          case router::Architecture::DualCore:
            arch = "dual-core + HT";
            break;
          case router::Architecture::NetworkProcessor:
            arch = "network processor";
            break;
          case router::Architecture::Commercial:
            arch = "commercial (black box)";
            break;
        }

        table.addRow({profile.name, arch,
                      stats::formatDouble(s2.measuredTps, 1),
                      stats::formatDouble(s6.measuredTps, 1),
                      stats::formatDouble(s8.measuredTps, 1)});
    }

    table.print(std::cout);

    std::cout <<
        "\nReading the table (paper section V):\n"
        "  * Roughly an order of magnitude separates each XORP tier:\n"
        "    dual-core Xeon > uni-core Pentium III > XScale control\n"
        "    CPU of the IXP2400.\n"
        "  * Scenario 6 (announcements that do not change the\n"
        "    forwarding table) is the fastest column everywhere:\n"
        "    beyond the decision process, changing the FIB costs\n"
        "    memory writes and IPC.\n"
        "  * Scenario 8 (every announcement replaces the best path\n"
        "    and rewrites the FIB) is the slowest column: packing\n"
        "    barely helps when per-prefix work dominates.\n"
        "  * The commercial router is competitive only with large\n"
        "    packets; its ~10 msg/s small-packet slow path would\n"
        "    be crippling under real-world unpacked updates.\n";
    return 0;
}
