/**
 * @file
 * Control/data-plane interference demo (paper section V.B).
 *
 * Sweeps forwarding load on a shared-resource router (Pentium III)
 * and on the network-processor router (IXP2400), showing both
 * directions of interference:
 *   - cross-traffic steals CPU from BGP processing, and
 *   - BGP table updates stall forwarding and cause packet loss,
 * while the IXP2400's dedicated packet processors show neither.
 */

#include <iostream>

#include "core/benchmark_runner.hh"
#include "stats/report.hh"

using namespace bgpbench;

namespace
{

void
sweep(const router::SystemProfile &profile)
{
    const size_t prefixes = 1000;
    std::cout << "\n=== " << profile.name << " (forwarding limit "
              << stats::formatDouble(profile.busLimitMbps, 0)
              << " Mbps) ===\n";

    stats::TextTable table({"cross-traffic", "BGP tps",
                            "BGP slowdown", "fwd drops"});
    double baseline = 0.0;

    for (double fraction : {0.0, 0.5, 1.0}) {
        core::BenchmarkConfig config;
        config.prefixCount = prefixes;
        config.crossTrafficMbps = profile.busLimitMbps * fraction;

        core::BenchmarkRunner runner(profile, config);
        auto result = runner.run(core::scenarioByNumber(2));
        if (fraction == 0.0)
            baseline = result.measuredTps;

        double slowdown =
            result.measuredTps > 0 ? baseline / result.measuredTps
                                   : 0.0;
        table.addRow(
            {stats::formatDouble(config.crossTrafficMbps, 0) + " Mbps",
             stats::formatDouble(result.measuredTps, 1),
             stats::formatDouble(slowdown, 2) + "x",
             std::to_string(result.dataPlane.queueDrops)});
    }
    table.print(std::cout);
}

} // namespace

int
main()
{
    std::cout
        << "Cross-traffic interference: Scenario 2 under forwarding "
           "load.\n";

    sweep(router::profileByName("PentiumIII"));
    sweep(router::profileByName("IXP2400"));

    std::cout <<
        "\nThe shared-CPU Pentium III slows down as interrupts and\n"
        "kernel forwarding preempt the user-space routing suite, and\n"
        "drops packets while the routing table is being installed.\n"
        "The IXP2400 forwards on dedicated packet processors: its\n"
        "(much lower) BGP rate does not move at all — the paper's\n"
        "case for separating control- and data-plane resources.\n";
    return 0;
}
